"""The :class:`Analysis` session facade.

An :class:`Analysis` owns everything one grid analysis needs -- the netlist,
the stamped MNA system, the :class:`~repro.variation.model.VariationSpec`,
the default transient settings -- plus a cache of the expensive
intermediates:

* polynomial chaos bases, keyed by ``(families, order)``;
* linear solvers (LU factorisations / preconditioners), keyed by the
  content fingerprint of the system matrix, the backend name and its
  options;
* assembled Galerkin (augmented) systems, keyed by expansion order;
* nominal deterministic transients, keyed by their
  :class:`~repro.sim.transient.TransientConfig`.

Repeated runs on the same session -- an order-1 vs order-2 ablation, an
OPERA-then-Monte-Carlo comparison, a solver shoot-out -- therefore reuse
work instead of rebuilding it.  Every registered engine runs through
:meth:`Analysis.run` and returns an object satisfying the
:class:`~repro.api.result.AnalysisResult` protocol.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional, Sequence, Union

import scipy.sparse as sp

from ..chaos.basis import PolynomialChaosBasis
from ..chaos.galerkin import GalerkinSystem
from ..errors import AnalysisError
from ..grid.generator import GridSpec, generate_power_grid, spec_for_node_count
from ..grid.netlist import PowerGridNetlist
from ..grid.spice_io import read_spice
from ..grid.stamping import StampedSystem, stamp
from ..opera.report import OperaReport
from ..opera.report import summarize as _summarize_report
from ..sim.linear import LinearSolver, make_solver, matrix_fingerprint, sparsity_fingerprint
from ..sim.results import TransientResult
from ..sim.transient import TransientConfig, transient_analysis
from ..telemetry import current_telemetry
from ..variation.model import StochasticSystem, VariationSpec, build_stochastic_system
from .engines import get_engine
from .result import AnalysisResult

__all__ = ["Analysis", "DEFAULT_TRANSIENT"]

#: Default time axis of a session (matches the CLI defaults: 8 ns, 0.2 ns step).
DEFAULT_TRANSIENT = TransientConfig(t_stop=8e-9, dt=0.2e-9)


class Analysis:
    """A reusable analysis session for one power grid.

    Build one with :meth:`from_spice`, :meth:`from_spec` or
    :meth:`from_netlist`, optionally adjust it with the fluent ``with_*``
    methods, then call :meth:`run` with any registered engine name::

        session = Analysis.from_spec(GridSpec(nx=20, ny=20, seed=1))
        opera = session.run("opera", order=2)
        mc = session.run("montecarlo", samples=200)
        print(session.compare())

    The session caches chaos bases, factorisations, Galerkin assemblies and
    nominal transients, so follow-up runs skip the expensive setup.
    """

    _CACHE_NAMES = ("basis", "solver", "galerkin", "nominal", "macromodel")

    def __init__(
        self,
        netlist: Optional[PowerGridNetlist] = None,
        *,
        stamped: Optional[StampedSystem] = None,
        system: Optional[StochasticSystem] = None,
        variation: Optional[VariationSpec] = None,
        transient: Optional[TransientConfig] = None,
        name: Optional[str] = None,
    ):
        if netlist is None and stamped is None and system is None:
            raise AnalysisError(
                "Analysis needs a netlist, a stamped system or a stochastic "
                "system; use Analysis.from_spice / from_spec / from_netlist"
            )
        self._netlist = netlist
        self._stamped = stamped
        self._system = system
        self._system_injected = system is not None
        self._variation = variation
        self._transient = transient if transient is not None else DEFAULT_TRANSIENT
        if name is None and netlist is not None:
            name = getattr(netlist, "name", None)
        self.name = name or "analysis"

        self._caches: Dict[str, Dict[Any, Any]] = {key: {} for key in self._CACHE_NAMES}
        self._stats: Dict[str, Dict[str, int]] = {
            key: {"hits": 0, "misses": 0} for key in self._CACHE_NAMES
        }
        # Sparsity-pattern index over the solver cache: maps
        # (pattern fingerprint, method, options) to the cache key of the most
        # recent solver built for that pattern, so a new corner's matrix can
        # be numerically refactored (Solver.refactor) instead of re-analysed.
        self._pattern_index: Dict[Any, Any] = {}

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_spice(cls, path: str, **kwargs) -> "Analysis":
        """Session for a SPICE-subset deck on disk."""
        return cls(read_spice(path), **kwargs)

    @classmethod
    def from_spec(cls, spec: Union[GridSpec, int], *, seed: int = 0, **kwargs) -> "Analysis":
        """Session for a synthetic grid from a :class:`GridSpec` (or a target
        node count, which is resolved via :func:`spec_for_node_count`)."""
        if isinstance(spec, int):
            spec = spec_for_node_count(spec, seed=seed)
        return cls(generate_power_grid(spec), **kwargs)

    @classmethod
    def from_netlist(cls, netlist: PowerGridNetlist, **kwargs) -> "Analysis":
        """Session for an already-built netlist."""
        return cls(netlist, **kwargs)

    @classmethod
    def from_system(cls, system: StochasticSystem, **kwargs) -> "Analysis":
        """Session for a prebuilt stochastic system (e.g. leakage or spatial
        variation models); grid-level features that need the netlist or the
        stamped matrices are unavailable."""
        return cls(system=system, **kwargs)

    # ------------------------------------------------------------- components
    @property
    def netlist(self) -> PowerGridNetlist:
        if self._netlist is None:
            raise AnalysisError("this session was built without a netlist")
        return self._netlist

    @property
    def stamped(self) -> StampedSystem:
        """The stamped (nominal) MNA system, stamped on first use."""
        if self._stamped is None:
            self._stamped = stamp(self.netlist)
        return self._stamped

    @property
    def variation(self) -> VariationSpec:
        """The process-variation spec (defaults to the paper's settings)."""
        if self._variation is None:
            self._variation = VariationSpec.paper_defaults()
        return self._variation

    @property
    def system(self) -> StochasticSystem:
        """The stochastic MNA system, built on first use."""
        if self._system is None:
            self._system = build_stochastic_system(self.stamped, self.variation)
        return self._system

    @property
    def transient(self) -> TransientConfig:
        """Default time axis used when a run does not override it."""
        return self._transient

    @property
    def vdd(self) -> float:
        return self._system.vdd if self._system is not None else self.stamped.vdd

    @property
    def num_nodes(self) -> int:
        return (self._system.num_nodes if self._system is not None else self.stamped.num_nodes)

    # ------------------------------------------------------------ configuration
    def with_variation(self, spec: VariationSpec) -> "Analysis":
        """Swap the variation model; invalidates the derived stochastic system."""
        self._variation = spec
        self._system = None
        self._system_injected = False
        self._caches["galerkin"].clear()
        return self

    def with_system(self, system: StochasticSystem) -> "Analysis":
        """Inject a prebuilt stochastic system (leakage, spatial, custom)."""
        self._system = system
        self._system_injected = True
        self._caches["galerkin"].clear()
        return self

    def with_transient(
        self, transient: Optional[TransientConfig] = None, **overrides
    ) -> "Analysis":
        """Set the default time axis (``with_transient(t_stop=4e-9, dt=0.1e-9)``)."""
        base = transient if transient is not None else self._transient
        if overrides:
            base = dataclasses.replace(base, **overrides)
        self._transient = base
        return self

    # ------------------------------------------------------------------ caches
    def basis(
        self,
        order: int,
        families: Optional[Sequence[str]] = None,
    ) -> PolynomialChaosBasis:
        """Chaos basis for ``order`` (cached by ``(families, order)``)."""
        if families is None:
            families = self.system.variable_families()
        key = (tuple(families), int(order))
        cache = self._caches["basis"]
        if key not in cache:
            self._stats["basis"]["misses"] += 1
            cache[key] = PolynomialChaosBasis(families=key[0], order=key[1], num_vars=len(key[0]))
        else:
            self._stats["basis"]["hits"] += 1
        return cache[key]

    def solver(self, matrix, method: str = "direct", **options) -> LinearSolver:
        """A linear solver for ``matrix``, cached by content fingerprint.

        Drop-in replacement for :func:`~repro.sim.linear.make_solver`; the
        engines receive this bound method as their ``solver_factory`` so
        factorisations survive across runs on the same session.
        """
        key = (
            matrix_fingerprint(matrix),
            str(method).lower(),
            tuple(sorted(options.items())),
        )
        cache = self._caches["solver"]
        if key not in cache:
            self._stats["solver"]["misses"] += 1
            cache[key] = self._build_solver(matrix, key, method, options)
        else:
            self._stats["solver"]["hits"] += 1
        return cache[key]

    def _build_solver(self, matrix, key, method, options) -> LinearSolver:
        """Build a solver, refactoring a cached same-pattern sibling if any.

        When the cache already holds a solver for the same sparsity pattern
        (same topology, different corner values) and that solver supports
        numeric refactorisation, the symbolic analysis is reused through
        ``sibling.refactor(matrix)`` -- bit-identical to a cold build.
        """
        built = None
        if sp.issparse(matrix):
            pattern_key = (sparsity_fingerprint(matrix), key[1], key[2])
            sibling = self._caches["solver"].get(self._pattern_index.get(pattern_key))
            refactor = getattr(sibling, "refactor", None)
            if callable(refactor):
                built = refactor(matrix)
            self._pattern_index[pattern_key] = key
        if built is None:
            built = make_solver(matrix, method=method, **options)
        return built

    def galerkin(self, order: int) -> GalerkinSystem:
        """The augmented (Galerkin) system for ``order`` (cached).

        The cached system is built in lazy (matrix-free operator) mode, so
        an operator-aware run (``solver="mean-block-cg"``) never assembles
        the explicit Kronecker sum; a direct-solver run materialises the
        CSR matrices on first access, and both representations then stay
        cached on the same object for every later run.
        """
        from ..opera.engine import build_galerkin_system

        key = int(order)
        cache = self._caches["galerkin"]
        if key not in cache:
            self._stats["galerkin"]["misses"] += 1
            cache[key] = build_galerkin_system(self.system, self.basis(order), assemble="lazy")
        else:
            self._stats["galerkin"]["hits"] += 1
        return cache[key]

    def macromodel(self, key, builder, verify=None):
        """Per-block macromodel cache of the ``mor`` engine.

        The provider contract: ``macromodel(key, builder, verify)`` returns
        ``(model, reused)``, where ``reused`` says whether a cached model was
        handed back.  ``key`` fingerprints the nominal block matrices, the
        port structure and the reduction order
        (:func:`repro.mor.macromodel.macromodel_key`); ``verify(model)``
        guards every hit (the excitation-coverage check) -- a cached model
        that fails it is rebuilt and replaced.  The cache survives
        :meth:`with_variation` / :meth:`with_system` on purpose: corner
        swaps keep the nominal matrices, and a corner that genuinely
        changes them misses on the key.
        """
        cache = self._caches["macromodel"]
        cached = cache.get(key)
        if cached is not None and (verify is None or verify(cached)):
            self._stats["macromodel"]["hits"] += 1
            return cached, True
        self._stats["macromodel"]["misses"] += 1
        model = builder()
        cache[key] = model
        return model, False

    def nominal_transient(self, transient: Optional[TransientConfig] = None) -> TransientResult:
        """Deterministic (no-variation) transient, cached per time axis."""
        config = transient if transient is not None else self._transient
        cache = self._caches["nominal"]
        if config not in cache:
            self._stats["nominal"]["misses"] += 1
            cache[config] = transient_analysis(self.stamped, config, solver_factory=self.solver)
        else:
            self._stats["nominal"]["hits"] += 1
        return cache[config]

    def solver_stats(self) -> Dict[str, Dict[str, Any]]:
        """Aggregated diagnostics of every cached solver exposing ``stats``.

        Iterative backends (``cg``, ``ilu-cg``, ``schwarz-cg``) report solve
        and iteration counters plus their most recent relative residual; the
        partitioned ``schur`` backend reports partition and factorisation
        diagnostics.  Counters are summed per backend name over the session's
        cached solver instances; "latest/size" fields take the maximum.
        Backends without ``stats`` (e.g. ``direct``) contribute nothing.
        """
        aggregated: Dict[str, Dict[str, Any]] = {}
        for key, solver in self._caches["solver"].items():
            stats = getattr(solver, "stats", None)
            if not isinstance(stats, dict):
                continue
            method = key[1]
            entry = aggregated.setdefault(method, {"instances": 0})
            entry["instances"] += 1
            for name in (
                "solves",
                "total_iterations",
                "warm_starts",
                "cold_starts",
                "factor_time_s",
            ):
                if stats.get(name) is not None:
                    entry[name] = entry.get(name, 0) + stats[name]
            for name in (
                "last_iterations",
                "last_relative_residual",
                "num_parts",
                "interface_nodes",
            ):
                if stats.get(name) is not None:
                    entry[name] = max(entry.get(name, 0), stats[name])
        return aggregated

    def cache_info(self) -> Dict[str, Dict[str, int]]:
        """Sizes and hit/miss counters of every session cache."""
        return {
            name: {"size": len(self._caches[name]), **self._stats[name]}
            for name in self._CACHE_NAMES
        }

    def clear_caches(self) -> None:
        """Drop every cached intermediate (bases, factorisations, ...)."""
        for cache in self._caches.values():
            cache.clear()

    # -------------------------------------------------------------------- runs
    def run(self, engine: str = "opera", mode: Optional[str] = None, **options):
        """Run a registered engine on this session.

        Parameters
        ----------
        engine:
            Name of a registered engine (``"opera"``, ``"decoupled"``,
            ``"montecarlo"``, ``"deterministic"``, ``"randomwalk"``, or any
            name added with :func:`repro.api.register_engine`).
        mode:
            ``"transient"`` or ``"dc"``; every engine picks its natural
            default when omitted.
        options:
            Engine-specific settings (``order=``, ``samples=``, ``solver=``,
            ``t_stop=``/``dt=`` time-axis overrides, ...).  Unknown options
            raise :class:`~repro.errors.AnalysisError`.

        Returns
        -------
        AnalysisResult
            A uniform result view; the engine-native result stays available
            as ``result.raw``.

        Notes
        -----
        While telemetry is enabled (:func:`repro.telemetry.profile` /
        :func:`repro.telemetry.enable_telemetry`), the run is wrapped in an
        ``engine.<name>`` span (phase ``run``) and the per-step solver
        aggregate recorded by the shared step loop is attached to the
        result as ``view.solver_stats["steps"]`` -- for *every* transient
        engine, since they all integrate through
        :class:`~repro.stepping.loop.StepLoop`.  Instrumentation only reads
        solver state, so results are bit-identical with telemetry on or off.
        """
        runner = get_engine(engine)
        telemetry = current_telemetry()
        if not telemetry.enabled:
            return runner(self, mode=mode, **options)
        # Claim only this run's step loops: discard anything recorded by
        # earlier, unrelated loops, then drain what the engine produced.
        telemetry.pop_step_stats()
        with telemetry.span(f"engine.{engine}", phase="run", engine=engine):
            view = runner(self, mode=mode, **options)
        steps = telemetry.pop_step_stats()
        if steps is not None and hasattr(view, "solver_stats"):
            stats = dict(view.solver_stats or {})
            stats["steps"] = steps.to_dict()
            view.solver_stats = stats
        return view

    def compare(self, **kwargs):
        """OPERA-vs-baseline accuracy/speed-up row; see :func:`repro.api.compare`."""
        from .compare import compare as _compare

        return _compare(self, **kwargs)

    def summarize(
        self,
        result: Optional[AnalysisResult] = None,
        nominal: Optional[TransientResult] = None,
        **kwargs,
    ) -> OperaReport:
        """Designer-facing report of a stochastic transient result.

        Runs the ``opera`` engine with session defaults when ``result`` is
        omitted.  The nominal reference transient is taken from the session
        cache unless supplied (or unless the session has no grid to run it
        on, in which case the mean drop serves as the reference).
        """
        if result is None:
            result = self.run("opera")
        raw = getattr(result, "raw", result)
        if not hasattr(raw, "times"):
            raise AnalysisError(
                "summarize() needs a stochastic transient result; got a "
                f"{type(raw).__name__} (DC results have no time axis)"
            )
        if nominal is None and (self._netlist is not None or self._stamped is not None):
            transient = getattr(result, "transient", None) or self._transient
            candidate = self.nominal_transient(transient)
            if candidate.times.shape == raw.times.shape:
                nominal = candidate
        return _summarize_report(raw, nominal, **kwargs)

    def __repr__(self) -> str:
        size = (
            self.num_nodes
            if (self._system is not None or self._stamped is not None or self._netlist is not None)
            else "?"
        )
        return f"<Analysis {self.name!r}: {size} nodes>"
