"""The analysis-engine registry and the five built-in engines.

An *engine* is a callable ``engine(session, mode=None, **options)`` that runs
one kind of analysis on an :class:`~repro.api.session.Analysis` session and
returns an object satisfying the :class:`~repro.api.result.AnalysisResult`
protocol.  Engines are looked up by name through
:meth:`Analysis.run(engine=...) <repro.api.session.Analysis.run>`, and new
backends plug in with a decorator::

    @register_engine("my-sampler")
    def run_my_sampler(session, mode=None, **options):
        ...

Built-ins:

``opera``
    The paper's stochastic Galerkin method (transient or DC), automatically
    using the decoupled special case when only the excitation varies.
``decoupled``
    The Section-5.1 special case explicitly (errors on matrix variation).
``montecarlo``
    The sampling reference (transient or DC).
``deterministic``
    A single nominal run with every germ at zero (transient or DC).
``randomwalk``
    Localised single-node DC estimates via random walks (DC only).
"""

from __future__ import annotations

import dataclasses
import time
from typing import Optional

import numpy as np

from ..errors import AnalysisError
from ..montecarlo.engine import (
    MonteCarloConfig,
    run_monte_carlo_dc,
    run_monte_carlo_transient,
)
from ..opera.config import OperaConfig
from ..opera.engine import run_opera_dc, run_opera_transient
from ..opera.special_case import run_decoupled_transient
from ..registry import Registry
from ..sim.dc import dc_operating_point
from ..sim.randomwalk import RandomWalkSolver
from ..sim.transient import TransientConfig
from ..telemetry import current_telemetry
from .result import (
    DeterministicResultView,
    MonteCarloResultView,
    RandomWalkResultView,
    StochasticResultView,
)

__all__ = [
    "register_engine",
    "unregister_engine",
    "engine_names",
    "get_engine",
]

_ENGINES = Registry("engine", AnalysisError)


def register_engine(name: str, runner=None, *, overwrite: bool = False):
    """Register an engine ``runner(session, mode=None, **options)``.

    Usable directly or as a decorator; registered names become valid
    arguments to :meth:`Analysis.run` and the CLI ``--engine`` flag.
    """
    return _ENGINES.register(name, runner, overwrite=overwrite)


def unregister_engine(name: str) -> None:
    """Remove a registered engine."""
    _ENGINES.unregister(name)


def engine_names() -> tuple:
    """Names of all registered engines, sorted."""
    return _ENGINES.names()


def get_engine(name: str):
    """Resolve an engine name (raises :class:`AnalysisError` with a listing)."""
    return _ENGINES.get(name)


# ---------------------------------------------------------------------------
# Shared option handling
# ---------------------------------------------------------------------------
_TRANSIENT_OVERRIDES = ("t_stop", "dt", "t_start", "method")


def _resolve_transient(session, options: dict) -> TransientConfig:
    """Pop time-axis options and merge them over the session default.

    ``scheme=`` is the engine-facing alias of ``method=`` (any registered
    stepping-scheme spec, e.g. ``"trapezoidal"`` or ``"theta:0.75"``); it
    wins when both are supplied.
    """
    base = options.pop("transient", None)
    if base is None:
        base = session.transient
    overrides = {key: options.pop(key) for key in _TRANSIENT_OVERRIDES if key in options}
    scheme = options.pop("scheme", None)
    if scheme is not None:
        overrides["method"] = str(scheme)
    if overrides:
        base = dataclasses.replace(base, **overrides)
    return base


def _reject_unknown(options: dict, engine: str, mode: str) -> None:
    if options:
        unknown = ", ".join(sorted(options))
        raise AnalysisError(f"unknown option(s) for engine {engine!r} (mode {mode!r}): {unknown}")


def _check_mode(engine: str, mode: str, supported: tuple) -> None:
    if mode not in supported:
        raise AnalysisError(
            f"engine {engine!r} supports mode(s) {', '.join(map(repr, supported))}; "
            f"got {mode!r}"
        )


#: Cumulative counters of :meth:`Analysis.solver_stats`; everything else is
#: a "latest value" field reported as-is.
_SOLVER_COUNTERS = (
    "instances",
    "solves",
    "total_iterations",
    "warm_starts",
    "cold_starts",
    "factor_time_s",
)


def _solver_stats_delta(before: dict, after: dict):
    """Per-run solver diagnostics: counter growth since ``before``.

    The session's solver cache (and therefore :meth:`Analysis.solver_stats`)
    is cumulative across runs; subtracting the snapshot taken when the engine
    started yields the work attributable to *this* run.  Backends whose
    counters did not move are dropped; returns ``None`` when nothing moved.
    """
    delta = {}
    for method, stats in after.items():
        previous = before.get(method, {})
        entry = {}
        moved = False
        for name in _SOLVER_COUNTERS:
            if name in stats:
                entry[name] = stats[name] - previous.get(name, 0)
                if entry[name]:
                    moved = True
        for name, value in stats.items():
            if name not in _SOLVER_COUNTERS:
                entry[name] = value
        if moved:
            delta[method] = entry
    return delta or None


# ---------------------------------------------------------------------------
# Built-in engines
# ---------------------------------------------------------------------------
@register_engine("opera")
def _run_opera_engine(session, mode: Optional[str] = None, **options):
    """Stochastic Galerkin analysis (chaos expansion of the response)."""
    mode = mode or "transient"
    _check_mode("opera", mode, ("transient", "dc"))
    order = int(options.pop("order", 2))
    solver = options.pop("solver", None)
    assemble = str(options.pop("assemble", "auto"))
    solver_options = options.pop("solver_options", None)
    stats_before = session.solver_stats()
    system = session.system
    basis = session.basis(order)

    if mode == "dc":
        t = float(options.pop("t", 0.0))
        _reject_unknown(options, "opera", mode)
        started = time.perf_counter()
        field = run_opera_dc(
            system,
            order=order,
            t=t,
            solver=solver or "direct",
            basis=basis,
            solver_factory=session.solver,
            assemble=assemble,
            solver_options=solver_options,
        )
        elapsed = time.perf_counter() - started
        view = StochasticResultView("opera", "dc", field, system.vdd, wall_time=elapsed)
        view.solver_stats = _solver_stats_delta(stats_before, session.solver_stats())
        return view

    transient = _resolve_transient(session, options)
    config = OperaConfig(
        transient=transient,
        order=order,
        solver=solver,
        assemble=assemble,
        solver_options=solver_options,
        store_coefficients=bool(options.pop("store_coefficients", True)),
        force_coupled=bool(options.pop("force_coupled", False)),
    )
    _reject_unknown(options, "opera", mode)
    galerkin = None
    if system.has_matrix_variation or config.force_coupled:
        with current_telemetry().span("opera.assemble", phase="assemble", order=order):
            galerkin = session.galerkin(order)
    result = run_opera_transient(
        system, config, basis=basis, solver_factory=session.solver, galerkin=galerkin
    )
    view = StochasticResultView("opera", "transient", result, system.vdd)
    view.transient = transient
    view.solver_stats = _solver_stats_delta(stats_before, session.solver_stats())
    return view


@register_engine("decoupled")
def _run_decoupled_engine(session, mode: Optional[str] = None, **options):
    """Section-5.1 decoupled special case (RHS-only variation, explicit)."""
    mode = mode or "transient"
    _check_mode("decoupled", mode, ("transient",))
    order = int(options.pop("order", 2))
    solver = options.pop("solver", None)
    stats_before = session.solver_stats()
    transient = _resolve_transient(session, options)
    config = OperaConfig(
        transient=transient,
        order=order,
        solver=solver,
        store_coefficients=bool(options.pop("store_coefficients", True)),
    )
    _reject_unknown(options, "decoupled", mode)
    system = session.system
    result = run_decoupled_transient(
        system, config, basis=session.basis(order), solver_factory=session.solver
    )
    view = StochasticResultView("decoupled", "transient", result, system.vdd)
    view.transient = transient
    view.solver_stats = _solver_stats_delta(stats_before, session.solver_stats())
    return view


@register_engine("montecarlo")
def _run_montecarlo_engine(session, mode: Optional[str] = None, **options):
    """Monte Carlo reference (full deterministic run per germ sample)."""
    mode = mode or "transient"
    _check_mode("montecarlo", mode, ("transient", "dc"))
    samples = options.pop("samples", None)
    if samples is None:
        samples = options.pop("num_samples", 200)
    samples = int(samples)
    seed = int(options.pop("seed", 0))
    solver = options.pop("solver", None) or "direct"
    workers = int(options.pop("workers", 1))
    chunk_size = options.pop("chunk_size", None)
    if chunk_size is not None:
        chunk_size = int(chunk_size)
    system = session.system

    if mode == "dc":
        t = float(options.pop("t", 0.0))
        _reject_unknown(options, "montecarlo", mode)
        result = run_monte_carlo_dc(
            system,
            num_samples=samples,
            t=t,
            seed=seed,
            solver=solver,
            workers=workers,
            chunk_size=chunk_size,
        )
        return MonteCarloResultView("montecarlo", "dc", result, system.vdd)

    transient = _resolve_transient(session, options)
    config = MonteCarloConfig(
        transient=transient,
        num_samples=samples,
        seed=seed,
        antithetic=bool(options.pop("antithetic", False)),
        store_nodes=tuple(options.pop("store_nodes", ())),
        solver=solver,
        workers=workers,
        chunk_size=chunk_size,
    )
    _reject_unknown(options, "montecarlo", mode)
    result = run_monte_carlo_transient(system, config)
    view = MonteCarloResultView("montecarlo", "transient", result, system.vdd)
    view.transient = transient
    return view


@register_engine("deterministic")
def _run_deterministic_engine(session, mode: Optional[str] = None, **options):
    """Nominal analysis with every germ at zero (no variation)."""
    mode = mode or "transient"
    _check_mode("deterministic", mode, ("transient", "dc"))
    solver = options.pop("solver", None)
    stats_before = session.solver_stats()

    if mode == "dc":
        t = float(options.pop("t", 0.0))
        _reject_unknown(options, "deterministic", mode)
        started = time.perf_counter()
        result = dc_operating_point(session.stamped, t=t, solver=solver or "direct")
        elapsed = time.perf_counter() - started
        return DeterministicResultView(
            "deterministic", "dc", result, session.stamped.vdd, wall_time=elapsed
        )

    transient = _resolve_transient(session, options)
    if solver is not None and solver != transient.solver:
        transient = dataclasses.replace(transient, solver=solver)
    _reject_unknown(options, "deterministic", mode)
    started = time.perf_counter()
    result = session.nominal_transient(transient)
    elapsed = time.perf_counter() - started
    view = DeterministicResultView(
        "deterministic", "transient", result, result.vdd, wall_time=elapsed
    )
    view.transient = transient
    view.solver_stats = _solver_stats_delta(stats_before, session.solver_stats())
    return view


@register_engine("randomwalk")
def _run_randomwalk_engine(session, mode: Optional[str] = None, **options):
    """Localised DC voltage estimates via random walks (Qian et al., DAC'03).

    Options: ``nodes`` (index, sequence of indices, or ``None`` for the node
    with the largest drain current), ``num_walks``, ``seed``, ``t`` and
    ``max_walk_length``.
    """
    mode = mode or "dc"
    _check_mode("randomwalk", mode, ("dc",))
    t = float(options.pop("t", 0.0))
    nodes = options.pop("nodes", None)
    num_walks = int(options.pop("num_walks", 400))
    seed = options.pop("seed", 0)
    max_walk_length = int(options.pop("max_walk_length", 100000))
    _reject_unknown(options, "randomwalk", mode)

    stamped = session.stamped
    if nodes is None:
        nodes = (int(np.argmax(stamped.drain_current_vector(t))),)
    elif isinstance(nodes, (int, np.integer)):
        nodes = (int(nodes),)
    else:
        nodes = tuple(int(node) for node in nodes)

    started = time.perf_counter()
    walker = RandomWalkSolver(stamped, t=t, max_walk_length=max_walk_length, seed=seed)
    estimates = tuple(walker.estimate(node, num_walks=num_walks) for node in nodes)
    elapsed = time.perf_counter() - started
    return RandomWalkResultView(
        "randomwalk",
        "dc",
        estimates,
        stamped.vdd,
        wall_time=elapsed,
        nodes=nodes,
    )


# The linalg subsystem registers the "mean-block-cg" solver backend, the
# partition subsystem the "hierarchical" engine (plus the "schur" /
# "schwarz-cg" solver backends), the regression subsystem the
# "pce-regression" engine and the mor subsystem the "mor" engine on
# import; pulling them in here makes them available to everything that
# goes through the registries.
from .. import linalg as _linalg  # noqa: E402,F401
from ..partition import engine as _partition_engine  # noqa: E402,F401
from ..regression import engine as _regression_engine  # noqa: E402,F401
from ..mor import engine as _mor_engine  # noqa: E402,F401
