"""The shared result protocol of the analysis engines.

Every engine registered with :func:`repro.api.register_engine` returns an
object satisfying :class:`AnalysisResult`: a uniform, engine-agnostic view of
"what happened" -- mean and sigma of the node voltages, the worst voltage
drop, the wall time -- regardless of whether the numbers came from a chaos
expansion, a Monte Carlo sweep, a deterministic run or a random walk.  The
engine-specific result object (with its full, richer API) stays reachable
through ``.raw``, so nothing is lost by going through the facade.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Protocol, runtime_checkable

import numpy as np

from ..chaos.response import StochasticField, StochasticTransientResult
from ..errors import AnalysisError

__all__ = [
    "AnalysisResult",
    "EngineResult",
    "StochasticResultView",
    "MonteCarloResultView",
    "DeterministicResultView",
    "RandomWalkResultView",
]


def _sorted_stats(value):
    """Recursively key-sorted copy of a stats mapping.

    ``to_dict()`` output is compared and serialised across engines and
    processes, so the ``solver_stats`` block must not depend on insertion
    order (which differs between backends and telemetry on/off).
    """
    if isinstance(value, dict):
        return {key: _sorted_stats(value[key]) for key in sorted(value)}
    return value


@runtime_checkable
class AnalysisResult(Protocol):
    """What every engine run returns, regardless of the backend.

    ``mean()`` and ``std()`` return node-voltage statistics shaped
    ``(num_times, num_nodes)`` for transient runs and ``(num_nodes,)`` for DC
    runs (engines analysing a node subset return that subset).
    """

    engine: str
    mode: str
    wall_time: Optional[float]

    def mean(self) -> np.ndarray:
        """Mean node voltages."""
        ...

    def std(self) -> np.ndarray:
        """Standard deviation of the node voltages (zero for deterministic runs)."""
        ...

    def worst_drop(self) -> float:
        """Largest mean voltage drop ``VDD - v`` over all analysed points."""
        ...

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly summary of the run."""
        ...


class EngineResult:
    """Base implementation of :class:`AnalysisResult` wrapping a raw result."""

    def __init__(
        self,
        engine: str,
        mode: str,
        raw: Any,
        vdd: float,
        wall_time: Optional[float] = None,
    ):
        self.engine = str(engine)
        self.mode = str(mode)
        self.raw = raw
        self.vdd = float(vdd)
        if wall_time is None:
            wall_time = getattr(raw, "wall_time", None)
        self.wall_time = wall_time
        #: Linear-solver diagnostics of the run (iteration counts, final
        #: residuals, factorisation times), attached by engines whose solver
        #: backends expose them; ``None`` when unavailable.  While telemetry
        #: is enabled, :meth:`Analysis.run` additionally attaches the
        #: per-step aggregate of the shared integration loop under the
        #: ``"steps"`` key (see the ``repro.api`` docstring for the schema).
        self.solver_stats: Optional[Dict[str, Any]] = None

    def mean(self) -> np.ndarray:
        raise NotImplementedError

    def std(self) -> np.ndarray:
        raise NotImplementedError

    def worst_drop(self) -> float:
        return float(np.max(self.vdd - self.mean()))

    def to_dict(self) -> Dict[str, Any]:
        std = self.std()
        summary = {
            "engine": self.engine,
            "mode": self.mode,
            "vdd": self.vdd,
            "wall_time": self.wall_time,
            "num_values": int(self.mean().size),
            "worst_drop": self.worst_drop(),
            "max_std": float(np.max(std)) if std.size else 0.0,
        }
        if self.solver_stats:
            summary["solver_stats"] = _sorted_stats(self.solver_stats)
        partition_stats = getattr(self, "partition_stats", None)
        if partition_stats:
            summary["partition"] = dict(partition_stats)
        return summary

    def __repr__(self) -> str:
        wall = f", wall_time={self.wall_time:.3f}s" if self.wall_time is not None else ""
        return (
            f"<{type(self).__name__} engine={self.engine!r} mode={self.mode!r} "
            f"worst_drop={self.worst_drop():.4g}V{wall}>"
        )


class StochasticResultView(EngineResult):
    """Chaos-expansion results (the ``opera`` and ``decoupled`` engines)."""

    def __init__(self, engine: str, mode: str, raw, vdd: float, wall_time=None):
        if not isinstance(raw, (StochasticTransientResult, StochasticField)):
            raise AnalysisError(
                "StochasticResultView wraps chaos-expansion results, got "
                f"{type(raw).__name__}"
            )
        super().__init__(engine, mode, raw, vdd, wall_time)

    @property
    def basis(self):
        """The polynomial chaos basis of the expansion."""
        return self.raw.basis

    def mean(self) -> np.ndarray:
        if isinstance(self.raw, StochasticField):
            return self.raw.mean
        return self.raw.mean_voltage

    def std(self) -> np.ndarray:
        if isinstance(self.raw, StochasticField):
            return self.raw.std
        return self.raw.std_voltage

    def to_dict(self) -> Dict[str, Any]:
        summary = super().to_dict()
        summary["basis_size"] = int(self.raw.basis.size)
        summary["order"] = int(self.raw.basis.order)
        return summary


class MonteCarloResultView(EngineResult):
    """Sampled statistics (the ``montecarlo`` engine, transient or DC)."""

    def mean(self) -> np.ndarray:
        return self.raw.mean_voltage

    def std(self) -> np.ndarray:
        return self.raw.std_voltage

    def to_dict(self) -> Dict[str, Any]:
        summary = super().to_dict()
        summary["num_samples"] = int(self.raw.num_samples)
        return summary


class DeterministicResultView(EngineResult):
    """A single nominal run (the ``deterministic`` engine); sigma is zero."""

    def mean(self) -> np.ndarray:
        return np.asarray(self.raw.voltages, dtype=float)

    def std(self) -> np.ndarray:
        return np.zeros_like(self.mean())


class RandomWalkResultView(EngineResult):
    """Localised DC estimates (the ``randomwalk`` engine).

    ``raw`` is a tuple of :class:`~repro.sim.randomwalk.RandomWalkEstimate`
    objects, one per queried node; ``std()`` reports the Monte Carlo standard
    error of each estimate.
    """

    def __init__(self, engine, mode, raw, vdd, wall_time=None, nodes=()):
        super().__init__(engine, mode, tuple(raw), vdd, wall_time)
        self.nodes = tuple(int(node) for node in nodes)

    def mean(self) -> np.ndarray:
        return np.array([estimate.voltage for estimate in self.raw])

    def std(self) -> np.ndarray:
        return np.array([estimate.standard_error for estimate in self.raw])

    def to_dict(self) -> Dict[str, Any]:
        summary = super().to_dict()
        summary["nodes"] = list(self.nodes)
        summary["num_walks"] = [int(estimate.num_walks) for estimate in self.raw]
        return summary
