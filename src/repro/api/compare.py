"""The ``compare`` helper: one Table-1 row from a single session.

This subsumes what the CLI, the examples and the Table-1 benchmark used to
assemble by hand: run the stochastic reference engine and the Monte Carlo
baseline on the same time axis, compute the accuracy metrics and the
3-sigma spread against the cached nominal transient, and wrap everything in
a :class:`ComparisonResult` whose ``str()`` is the familiar Table-1 layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..analysis.metrics import (
    AccuracyMetrics,
    compare_to_monte_carlo,
    three_sigma_spread_percent,
)
from ..analysis.tables import Table1Row, format_table1
from ..sim.results import TransientResult
from ..sim.transient import TransientConfig
from .result import AnalysisResult

__all__ = ["ComparisonResult", "compare"]


@dataclass(frozen=True)
class ComparisonResult:
    """Accuracy and speed-up of a stochastic engine against Monte Carlo."""

    row: Table1Row
    metrics: AccuracyMetrics
    three_sigma_spread_percent: float
    reference: AnalysisResult
    baseline: AnalysisResult
    nominal: Optional[TransientResult]

    @property
    def speedup(self) -> float:
        """Baseline wall time divided by reference wall time."""
        return self.row.speedup

    def table(self, title: Optional[str] = None) -> str:
        """The single-row Table-1 rendering."""
        return format_table1([self.row], title=title)

    def __str__(self) -> str:
        return self.table(title=f"{self.reference.engine} vs {self.baseline.engine}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.row.name,
            "num_nodes": self.row.num_nodes,
            "average_mean_error_percent": self.row.average_mean_error_percent,
            "maximum_mean_error_percent": self.row.maximum_mean_error_percent,
            "average_sigma_error_percent": self.row.average_sigma_error_percent,
            "maximum_sigma_error_percent": self.row.maximum_sigma_error_percent,
            "three_sigma_spread_percent": self.three_sigma_spread_percent,
            "baseline_seconds": self.row.monte_carlo_seconds,
            "reference_seconds": self.row.opera_seconds,
            "speedup": self.speedup,
        }


def compare(
    session,
    *,
    order: int = 2,
    samples: int = 200,
    seed: int = 0,
    antithetic: bool = True,
    transient: Optional[TransientConfig] = None,
    name: Optional[str] = None,
    reference_engine: str = "opera",
    baseline_engine: str = "montecarlo",
    reference_options: Optional[dict] = None,
    baseline_options: Optional[dict] = None,
) -> ComparisonResult:
    """Run ``reference_engine`` and ``baseline_engine`` and assemble one row.

    The baseline Monte Carlo automatically records the reference's worst
    node, so distribution comparisons (Figures 1/2) work on the returned raw
    results without a re-run.  The nominal transient reference comes from the
    session cache when the session owns a grid.
    """
    transient = transient if transient is not None else session.transient

    reference_opts = dict(reference_options or {})
    if reference_engine in ("opera", "decoupled"):
        reference_opts.setdefault("order", order)
    reference = session.run(
        reference_engine,
        mode="transient",
        transient=transient,
        **reference_opts,
    )

    baseline_opts = dict(baseline_options or {})
    if baseline_engine == "montecarlo":
        baseline_opts.setdefault("samples", samples)
        baseline_opts.setdefault("seed", seed)
        baseline_opts.setdefault("antithetic", antithetic)
        if hasattr(reference.raw, "worst_node"):
            baseline_opts.setdefault("store_nodes", (int(reference.raw.worst_node()),))
    baseline = session.run(baseline_engine, mode="transient", transient=transient, **baseline_opts)

    metrics = compare_to_monte_carlo(reference.raw, baseline.raw)

    nominal = None
    if session._netlist is not None or session._stamped is not None:
        nominal = session.nominal_transient(transient)
    spread = three_sigma_spread_percent(reference.raw, nominal)

    row = Table1Row.from_metrics(
        name=name or session.name,
        num_nodes=session.num_nodes,
        metrics=metrics,
        three_sigma_spread=spread,
        monte_carlo_seconds=baseline.wall_time or 0.0,
        opera_seconds=reference.wall_time or 0.0,
    )
    return ComparisonResult(
        row=row,
        metrics=metrics,
        three_sigma_spread_percent=spread,
        reference=reference,
        baseline=baseline,
        nominal=nominal,
    )
