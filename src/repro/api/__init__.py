"""Unified analysis facade: sessions, engine registry, result protocol.

This package is the recommended entry point of the library::

    from repro.api import Analysis

    session = Analysis.from_spec(GridSpec(nx=20, ny=20, seed=1))
    result = session.run("opera", order=2)        # -> AnalysisResult
    print(session.compare(samples=200))           # Table-1 style row

See :class:`Analysis` for session construction and caching,
:func:`register_engine` / :func:`register_solver` for adding backends, and
:class:`AnalysisResult` for the uniform result protocol.
"""

from ..sim.linear import (
    register_solver,
    solver_names,
    unregister_solver,
)
from .compare import ComparisonResult, compare
from .engines import engine_names, get_engine, register_engine, unregister_engine
from .result import (
    AnalysisResult,
    DeterministicResultView,
    EngineResult,
    MonteCarloResultView,
    RandomWalkResultView,
    StochasticResultView,
)
from .session import DEFAULT_TRANSIENT, Analysis

__all__ = [
    "Analysis",
    "DEFAULT_TRANSIENT",
    "AnalysisResult",
    "EngineResult",
    "StochasticResultView",
    "MonteCarloResultView",
    "DeterministicResultView",
    "RandomWalkResultView",
    "ComparisonResult",
    "compare",
    "register_engine",
    "unregister_engine",
    "engine_names",
    "get_engine",
    "register_solver",
    "unregister_solver",
    "solver_names",
]
