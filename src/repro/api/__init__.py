"""Unified analysis facade: sessions, engine registry, result protocol.

This package is the recommended entry point of the library::

    from repro.api import Analysis

    session = Analysis.from_spec(GridSpec(nx=20, ny=20, seed=1))
    result = session.run("opera", order=2)        # -> AnalysisResult
    print(session.compare(samples=200))           # Table-1 style row

See :class:`Analysis` for session construction and caching,
:func:`register_engine` / :func:`register_solver` for adding backends, and
:class:`AnalysisResult` for the uniform result protocol.

Summary schema
--------------
``AnalysisResult.to_dict()`` returns a JSON-safe summary with the keys
``engine``, ``mode``, ``vdd``, ``wall_time``, ``num_values``,
``worst_drop`` and ``max_std`` (plus engine-specific extras such as
``order`` / ``basis_size`` / ``num_samples``).  When the run produced
solver diagnostics the summary carries a ``solver_stats`` block whose keys
are **recursively sorted** (deterministic ordering across engines,
backends and serialisations):

``solver_stats.<backend>``
    Per-run counter growth of each cached solver backend that did work:
    ``instances``, ``solves``, ``total_iterations``, ``warm_starts``,
    ``cold_starts``, ``factor_time_s`` plus the backend's latest-value
    fields (``last_iterations``, ``last_relative_residual``, ...).
``solver_stats.steps``
    Present while telemetry is enabled
    (:func:`repro.telemetry.profile`): the per-step aggregate of the
    shared integration loop -- ``steps``, ``solves``,
    ``total_iterations``, ``warm_starts`` / ``cold_starts`` /
    ``warm_start_hit_rate``, ``lhs_hoists`` / ``lhs_reused_solves`` and
    final/max relative residuals (see
    :class:`repro.telemetry.StepStats`).

Partitioned runs additionally report a ``partition`` block (schedule and
interface statistics of the hierarchical engine).
"""

from ..sim.linear import (
    register_solver,
    solver_names,
    unregister_solver,
)
from .compare import ComparisonResult, compare
from .engines import engine_names, get_engine, register_engine, unregister_engine
from .result import (
    AnalysisResult,
    DeterministicResultView,
    EngineResult,
    MonteCarloResultView,
    RandomWalkResultView,
    StochasticResultView,
)
from .session import DEFAULT_TRANSIENT, Analysis

__all__ = [
    "Analysis",
    "DEFAULT_TRANSIENT",
    "AnalysisResult",
    "EngineResult",
    "StochasticResultView",
    "MonteCarloResultView",
    "DeterministicResultView",
    "RandomWalkResultView",
    "ComparisonResult",
    "compare",
    "register_engine",
    "unregister_engine",
    "engine_names",
    "get_engine",
    "register_solver",
    "unregister_solver",
    "solver_names",
]
