"""Process-pool backend for per-block Schur elimination.

This module reuses the worker pattern of :mod:`repro.sweep.runner` and the
chunked Monte Carlo engine: a :class:`concurrent.futures.ProcessPoolExecutor`
whose workers keep a module-level cache of expensive per-task state -- here
the per-block :class:`~repro.partition.schur.AtomEliminator` factorisations
-- so repeated phases (condensation, then one forward elimination per time
step) reuse the block LUs instead of refactoring.

Work is dispatched in *groups*: the hierarchical engine splits its fixed
block list into ``K`` contiguous groups, one task per group per phase.  A
worker that receives a group it has not seen builds the needed eliminators
lazily from the blueprint shipped at pool start-up, so correctness never
depends on which worker handles which group.  Because every block is
processed by the same :class:`AtomEliminator` code as the serial path and
the driver folds group results back in fixed block order, the numbers are
bit-identical for any group count and any worker count.
"""

from __future__ import annotations

import itertools
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from .partitioner import GridPartition
from .schur import AtomEliminator

__all__ = ["HierarchicalWorkerPool", "split_groups"]

#: Per-process cache: token -> {"matrices": ..., "partition": ...,
#: "eliminators": {(matrix_key, atom): AtomEliminator}}.
_WORKER_STATE: Dict[str, Dict] = {}

_TOKENS = itertools.count()


def _init_worker(token: str, matrices: Dict[str, sp.csr_matrix], partition) -> None:
    """Pool initializer: stash the blueprint this pool's tasks refer to."""
    _WORKER_STATE[token] = {
        "matrices": matrices,
        "partition": partition,
        "eliminators": {},
    }


def _eliminator_for(token: str, matrix_key: str, atom: int) -> AtomEliminator:
    state = _WORKER_STATE[token]
    cache = state["eliminators"]
    key = (matrix_key, atom)
    if key not in cache:
        partition: GridPartition = state["partition"]
        cache[key] = AtomEliminator(
            state["matrices"][matrix_key],
            partition.interiors[atom],
            partition.boundary,
        )
    return cache[key]


def _worker_condense(args) -> Dict[int, Tuple]:
    token, matrix_key, atom_ids = args
    return {atom: _eliminator_for(token, matrix_key, atom).condense() for atom in atom_ids}


def _worker_eliminate(args) -> List[Tuple[np.ndarray, np.ndarray]]:
    token, matrix_key, atom_ids, b_slices = args
    return [
        _eliminator_for(token, matrix_key, atom).eliminate(b)
        for atom, b in zip(atom_ids, b_slices)
    ]


def split_groups(atom_ids: Sequence[int], num_groups: int) -> List[List[int]]:
    """Split block ids into ``num_groups`` contiguous, near-even groups.

    The layout depends only on the block list and the group count -- never
    on the worker count -- mirroring the chunk-layout guarantee of the
    chunked Monte Carlo engine.
    """
    atom_ids = list(atom_ids)
    num_groups = max(1, min(int(num_groups), len(atom_ids) or 1))
    base, extra = divmod(len(atom_ids), num_groups)
    groups: List[List[int]] = []
    start = 0
    for g in range(num_groups):
        size = base + (1 if g < extra else 0)
        groups.append(atom_ids[start : start + size])
        start += size
    return [group for group in groups if group]


class HierarchicalWorkerPool:
    """A pool of block-elimination workers shared by several factorisations.

    Create one per hierarchical run, then hand ``pool.backend(key)`` to each
    :class:`~repro.partition.schur.SchurComplement` (one key per matrix, e.g.
    ``"dc"`` and ``"step"``).  Use as a context manager so the pool is torn
    down when the run finishes.
    """

    def __init__(
        self,
        workers: int,
        matrices: Dict[str, sp.spmatrix],
        partition: GridPartition,
        groups: List[List[int]],
    ):
        self._token = f"{os.getpid()}-{next(_TOKENS)}"
        self._groups = groups
        shipped = {key: sp.csr_matrix(matrix) for key, matrix in matrices.items()}
        self._executor = ProcessPoolExecutor(
            max_workers=max(1, min(int(workers), len(groups))),
            initializer=_init_worker,
            initargs=(self._token, shipped, partition),
        )

    def backend(self, matrix_key: str) -> "PoolAtomBackend":
        return PoolAtomBackend(self._executor, self._token, matrix_key, self._groups)

    def shutdown(self) -> None:
        self._executor.shutdown()

    def __enter__(self) -> "HierarchicalWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


class PoolAtomBackend:
    """Backend routing per-block phases of one matrix through the pool."""

    def __init__(self, executor, token: str, matrix_key: str, groups: List[List[int]]):
        self._executor = executor
        self._token = token
        self._matrix_key = matrix_key
        self._groups = groups

    def _grouped(self, atom_ids: Sequence[int]) -> List[List[int]]:
        wanted = set(atom_ids)
        return [[atom for atom in group if atom in wanted] for group in self._groups]

    def condense(self, atom_ids: Sequence[int]) -> Dict[int, Tuple]:
        futures = [
            self._executor.submit(
                _worker_condense, (self._token, self._matrix_key, group)
            )
            for group in self._grouped(atom_ids)
            if group
        ]
        merged: Dict[int, Tuple] = {}
        for future in futures:
            merged.update(future.result())
        return merged

    def eliminate(
        self, atom_ids: Sequence[int], b_slices: Sequence[np.ndarray]
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        slice_of = dict(zip(atom_ids, b_slices))
        jobs = []
        for group in self._grouped(atom_ids):
            if group:
                jobs.append(
                    (group, self._executor.submit(
                        _worker_eliminate,
                        (
                            self._token,
                            self._matrix_key,
                            group,
                            [slice_of[atom] for atom in group],
                        ),
                    ))
                )
        by_atom: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        for group, future in jobs:
            for atom, result in zip(group, future.result()):
                by_atom[atom] = result
        return [by_atom[atom] for atom in atom_ids]
