"""The ``hierarchical`` analysis engine: partitioned OPERA.

The engine runs the paper's stochastic Galerkin analysis through the
Schur-complement machinery of this package instead of a monolithic
factorisation.  Because every parameter matrix of the affine variation
model shares the grid's sparsity, the augmented (Galerkin) system inherits
the grid's partition structure exactly: if node sets ``I_1 .. I_A`` are
mutually decoupled interiors of the grid, the index sets
``{j * n + i : i in I_k}`` (all chaos blocks ``j``) are mutually decoupled
interiors of the augmented system.  The engine therefore

1. tiles the grid into a *fixed* set of fine blocks ("atoms"),
2. lifts the tiling to the augmented system,
3. condenses every atom onto its interface ports (exact Schur reduction),
4. time-marches the reduced interface system, back-substituting every
   atom's interior chaos coefficients per step, and
5. reassembles the node statistics from the per-atom solutions.

Determinism contract
--------------------
The atom tiling depends only on the grid (see
:func:`~repro.partition.partitioner.default_atom_count`), *never* on the
requested partition count or worker count.  ``partitions=K`` groups the
atoms into ``K`` schedule units -- the two-level hierarchy grid -> groups ->
atoms -- and ``workers=W`` fans those groups over a process pool
(:mod:`repro.partition.workers`).  Per-atom arithmetic is identical on every
schedule and group results are folded in fixed atom order, so the returned
statistics are **bit-identical for every K and every W**.  Overriding
``atoms=`` changes the tiling (and therefore the floating-point path); the
result still matches the monolithic ``opera`` engine to solver precision.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from ..api.engines import (
    _check_mode,
    _reject_unknown,
    _resolve_transient,
    register_engine,
)
from ..api.result import StochasticResultView
from ..chaos.galerkin import GalerkinSystem
from ..chaos.response import StochasticField, StochasticTransientResult
from ..errors import AnalysisError
from ..sim.transient import TransientConfig
from ..variation.model import StochasticSystem
from .partitioner import (
    GridPartition,
    augment_partition,
    default_atom_count,
    node_coordinates,
    partition_matrix,
    union_structure,
)
from ..stepping import SchurSystemAdapter, StepLoop
from .schur import SchurComplement
from .workers import split_groups

__all__ = [
    "system_partition",
    "run_hierarchical_transient",
    "run_hierarchical_dc",
]


def system_partition(system: StochasticSystem, num_atoms: Optional[int] = None) -> GridPartition:
    """The engine's fixed fine tiling of a stochastic system's node set.

    The separator is computed against the union sparsity of the nominal
    matrices *and every sensitivity matrix*, so no coupling of any germ
    realisation crosses two interiors.  Generator-style node names enable
    coordinate bisection; other netlists fall back to graph bisection.
    """
    if num_atoms is None:
        num_atoms = default_atom_count(system.num_nodes)
    structure = union_structure(
        system.g_nominal,
        system.c_nominal,
        *system.g_sensitivities.values(),
        *system.c_sensitivities.values(),
    )
    coords = None
    if system.node_names is not None:
        coords = node_coordinates(system.node_names)
    return partition_matrix(structure, num_atoms, coords=coords)


def run_hierarchical_transient(
    system: StochasticSystem,
    galerkin: GalerkinSystem,
    transient: TransientConfig,
    partition: Optional[GridPartition] = None,
    atoms: Optional[int] = None,
    partitions: Optional[int] = None,
    workers: int = 1,
    solver: Optional[str] = None,
    store_coefficients: bool = False,
) -> StochasticTransientResult:
    """Partitioned stochastic Galerkin transient (exact Schur reduction).

    Parameters
    ----------
    system, galerkin:
        The stochastic system and its assembled augmented Galerkin system.
    transient:
        Time axis and integration scheme (matches ``run_transient``).
    partition:
        Optional node partition; defaults to :func:`system_partition`.
    atoms:
        Fine-tiling override (changes the floating-point path; see the
        module docstring).
    partitions:
        Schedule group count ``K`` (default: one group per atom).  Purely a
        scheduling parameter: results are bit-identical for every value.
    workers:
        Worker processes for per-block work; ``1`` runs in-process.
    solver:
        Step-solver backend: ``"schur"`` (default, exact reduction) or a
        registered iterative backend such as ``"schwarz-cg"``, which runs
        matrix-free on the stepping operator with the augmented partition's
        block preconditioner and is warm-started across steps by the
        shared loop.
    store_coefficients:
        Keep the full chaos-coefficient tensor (memory-hungry on large
        grids); by default only mean/variance waveforms are stored.
    """
    if workers < 1:
        raise AnalysisError(f"workers must be at least 1, got {workers}")
    if partitions is not None and partitions < 1:
        raise AnalysisError(f"partitions must be at least 1, got {partitions}")
    started = time.perf_counter()
    basis = galerkin.basis
    num_nodes = system.num_nodes
    if partition is None:
        partition = system_partition(system, num_atoms=atoms)
    augmented = augment_partition(partition, basis.size)

    atom_ids = [k for k, interior in enumerate(partition.interiors) if interior.size]
    groups = split_groups(atom_ids, partitions if partitions is not None else len(atom_ids))
    adapter = SchurSystemAdapter(
        galerkin,
        augmented,
        groups=groups,
        workers=workers,
        solver=solver if solver is not None else "schur",
    )

    times = transient.times()
    if store_coefficients:
        coefficients = np.zeros((times.size, basis.size, num_nodes))
    else:
        mean = np.zeros((times.size, num_nodes))
        variance = np.zeros((times.size, num_nodes))

    def collect(step: int, t: float, stacked: np.ndarray) -> None:
        blocks = stacked.reshape(basis.size, num_nodes)
        if store_coefficients:
            coefficients[step] = blocks
        else:
            mean[step] = blocks[0]
            if basis.size > 1:
                variance[step] = np.sum(blocks[1:] ** 2, axis=0)

    with adapter:
        StepLoop(adapter, transient.scheme, times, transient.dt).run(
            callback=collect, store=False
        )

    elapsed = time.perf_counter() - started
    if store_coefficients:
        result = StochasticTransientResult(
            times=times,
            basis=basis,
            vdd=system.vdd,
            coefficients=coefficients,
            node_names=system.node_names,
            wall_time=elapsed,
        )
    else:
        result = StochasticTransientResult(
            times=times,
            basis=basis,
            vdd=system.vdd,
            mean=mean,
            variance=variance,
            node_names=system.node_names,
            wall_time=elapsed,
        )
    interface_nodes, factor_time = adapter.interface_stats()
    result.partition_stats = _schedule_stats(
        partition, groups, workers, interface_nodes, factor_time
    )
    return result


def run_hierarchical_dc(
    system: StochasticSystem,
    galerkin: GalerkinSystem,
    t: float = 0.0,
    partition: Optional[GridPartition] = None,
    atoms: Optional[int] = None,
) -> StochasticField:
    """Partitioned stochastic DC analysis (one exact Schur solve)."""
    basis = galerkin.basis
    if partition is None:
        partition = system_partition(system, num_atoms=atoms)
    augmented = augment_partition(partition, basis.size)
    schur = SchurComplement(galerkin.conductance.tocsr(), augmented)
    solution = schur.solve(galerkin.rhs(float(t)))
    coefficients = solution.reshape(basis.size, system.num_nodes)
    field = StochasticField(basis, coefficients, vdd=system.vdd, node_names=system.node_names)
    field.partition_stats = _schedule_stats(
        partition,
        [list(range(partition.num_parts))],
        1,
        int(schur.partition.boundary.size),
        float(schur.factor_time),
    )
    return field


def _schedule_stats(partition, groups, workers, interface_nodes, factor_time_s) -> dict:
    return {
        **partition.stats(),
        "groups": len(groups),
        "workers": int(workers),
        "augmented_interface_nodes": int(interface_nodes),
        "factor_time_s": float(factor_time_s),
    }


@register_engine("hierarchical")
def _run_hierarchical_engine(session, mode: Optional[str] = None, **options):
    """Partitioned stochastic Galerkin analysis (Schur port reduction).

    Options: ``order`` (chaos order, default 2), ``partitions`` (schedule
    group count ``K``), ``workers`` (process-pool fan-out of per-block
    work), ``atoms`` (fine-tiling override), ``solver`` (step backend:
    ``"schur"`` or an iterative backend like ``"schwarz-cg"``, transient
    mode only), ``store_coefficients``, time axis overrides
    (``t_stop``/``dt``/``scheme``/...), and ``t`` in DC mode.
    Statistics are bit-identical for every ``partitions``/``workers``
    setting; see :mod:`repro.partition.engine`.
    """
    mode = mode or "transient"
    _check_mode("hierarchical", mode, ("transient", "dc"))
    order = int(options.pop("order", 2))
    partitions = options.pop("partitions", None)
    if partitions is not None:
        partitions = int(partitions)
    atoms = options.pop("atoms", None)
    if atoms is not None:
        atoms = int(atoms)
    workers = int(options.pop("workers", 1))
    solver = options.pop("solver", None)
    system = session.system
    galerkin = session.galerkin(order)

    if mode == "dc":
        if partitions is not None or workers != 1 or solver is not None:
            raise AnalysisError(
                "hierarchical dc mode performs a single serial Schur solve; "
                "'partitions', 'workers' and 'solver' only apply to "
                "transient mode"
            )
        t = float(options.pop("t", 0.0))
        _reject_unknown(options, "hierarchical", mode)
        started = time.perf_counter()
        field = run_hierarchical_dc(system, galerkin, t=t, atoms=atoms)
        elapsed = time.perf_counter() - started
        view = StochasticResultView("hierarchical", "dc", field, system.vdd, wall_time=elapsed)
        view.partition_stats = field.partition_stats
        return view

    transient = _resolve_transient(session, options)
    store_coefficients = bool(options.pop("store_coefficients", False))
    _reject_unknown(options, "hierarchical", mode)
    result = run_hierarchical_transient(
        system,
        galerkin,
        transient,
        atoms=atoms,
        partitions=partitions,
        workers=workers,
        solver=solver,
        store_coefficients=store_coefficients,
    )
    view = StochasticResultView("hierarchical", "transient", result, system.vdd)
    view.transient = transient
    view.partition_stats = result.partition_stats
    return view
