"""Deterministic graph partitioning of power-grid MNA systems.

The partitioner cuts the node set of a stamped MNA system (or any sparse
symmetric matrix) into ``num_parts`` blocks plus a *global interface*: a
vertex separator containing every node with a neighbour in a different
block.  Block interiors are therefore mutually decoupled -- eliminating them
independently and condensing onto the interface is exactly the Schur
complement reduction implemented in :mod:`repro.partition.schur`.

Two bisection strategies are provided, both fully deterministic (stable
sorts, index-order tie breaking, no randomness):

* **coordinate bisection** -- when the node names follow the synthetic
  generator's ``n{layer}_{row}_{col}`` convention, nodes are split
  recursively along the longer (row/col) axis at the median coordinate.
  Via stacks share (row, col) across layers, so cuts run vertically through
  the whole metal stack and the interface stays one grid line wide;
* **graph bisection** -- for arbitrary netlists, nodes are ordered by
  breadth-first search from a pseudo-peripheral vertex and split at the
  median of that ordering; recursion yields ``num_parts`` blocks.

Both strategies accept any ``num_parts >= 1`` (not just powers of two):
recursion splits the target part count as evenly as the node counts allow.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from ..errors import AnalysisError

__all__ = [
    "GridPartition",
    "coordinate_bisection",
    "graph_bisection",
    "node_coordinates",
    "partition_matrix",
    "partition_system",
    "union_structure",
    "augment_partition",
    "default_atom_count",
]

#: Node-name pattern of :func:`repro.grid.generator.node_name`.
_NODE_NAME = re.compile(r"^n(\d+)_(\d+)_(\d+)$")


@dataclass(eq=False)
class GridPartition:
    """A node partition: ``num_parts`` disjoint interiors plus one interface.

    Attributes
    ----------
    num_nodes:
        Total node count of the partitioned system.
    interiors:
        One sorted index array per part; interiors are mutually disjoint and
        (by construction) share no matrix edge with another interior.
    boundary:
        Sorted indices of the interface (separator) nodes.
    assignments:
        The part id every node was assigned to before separator promotion
        (interface nodes keep theirs); useful for diagnostics and for
        overlap-style preconditioners.
    """

    num_nodes: int
    interiors: Tuple[np.ndarray, ...]
    boundary: np.ndarray
    assignments: np.ndarray = field(repr=False, default=None)

    def __post_init__(self):
        covered = int(sum(interior.size for interior in self.interiors))
        covered += int(self.boundary.size)
        if covered != self.num_nodes:
            raise AnalysisError(
                f"partition covers {covered} of {self.num_nodes} nodes; "
                "interiors and boundary must tile the node set exactly"
            )

    @property
    def num_parts(self) -> int:
        return len(self.interiors)

    @property
    def interior_sizes(self) -> Tuple[int, ...]:
        return tuple(int(interior.size) for interior in self.interiors)

    @property
    def interface_fraction(self) -> float:
        """Fraction of all nodes promoted to the global interface."""
        if self.num_nodes == 0:
            return 0.0
        return float(self.boundary.size) / float(self.num_nodes)

    def stats(self) -> Dict:
        """JSON-friendly partition diagnostics."""
        return {
            "num_parts": self.num_parts,
            "num_nodes": self.num_nodes,
            "interface_nodes": int(self.boundary.size),
            "interface_fraction": self.interface_fraction,
            "interior_sizes": list(self.interior_sizes),
        }

    def validate_against(self, matrix: sp.spmatrix) -> None:
        """Check that no matrix edge connects two different interiors."""
        matrix = sp.csr_matrix(matrix)
        owner = np.full(self.num_nodes, -1, dtype=int)
        for part, interior in enumerate(self.interiors):
            owner[interior] = part
        coo = matrix.tocoo()
        row_owner = owner[coo.row]
        col_owner = owner[coo.col]
        bad = (row_owner >= 0) & (col_owner >= 0) & (row_owner != col_owner)
        if np.any(bad):
            raise AnalysisError(
                "partition is not a vertex separator: "
                f"{int(np.count_nonzero(bad))} matrix entr(ies) couple two "
                "different block interiors"
            )


# ---------------------------------------------------------------------------
# Bisection strategies
# ---------------------------------------------------------------------------
def _split_counts(num_parts: int) -> Tuple[int, int]:
    """How a recursive bisection divides a part budget (left, right)."""
    left = num_parts // 2
    return left, num_parts - left


def coordinate_bisection(coords: np.ndarray, num_parts: int) -> np.ndarray:
    """Assign each node a part id by recursive median coordinate bisection.

    ``coords`` has shape ``(num_nodes, d)``; the split axis is the one with
    the widest spread, ties going to the lower axis index, and the split
    point is the size-weighted median of a stable coordinate sort (so equal
    coordinates break ties by node index, deterministically).
    """
    coords = np.asarray(coords, dtype=float)
    if coords.ndim != 2:
        raise AnalysisError("coords must have shape (num_nodes, d)")
    if num_parts < 1:
        raise AnalysisError(f"num_parts must be at least 1, got {num_parts}")
    assignments = np.zeros(coords.shape[0], dtype=int)

    def recurse(indices: np.ndarray, parts: int, first_part: int) -> None:
        if parts <= 1 or indices.size <= 1:
            assignments[indices] = first_part
            return
        local = coords[indices]
        spreads = local.max(axis=0) - local.min(axis=0)
        axis = int(np.argmax(spreads))
        order = np.argsort(local[:, axis], kind="stable")
        left_parts, right_parts = _split_counts(parts)
        cut = (indices.size * left_parts) // parts
        cut = min(max(cut, 1), indices.size - 1)
        recurse(indices[order[:cut]], left_parts, first_part)
        recurse(indices[order[cut:]], right_parts, first_part + left_parts)

    recurse(np.arange(coords.shape[0]), int(num_parts), 0)
    return assignments


def _bfs_order(adjacency: sp.csr_matrix, indices: np.ndarray) -> np.ndarray:
    """Deterministic BFS ordering of ``indices`` in the induced subgraph.

    The start vertex is a pseudo-peripheral node: a lowest-degree vertex
    (ties to the lowest index), re-rooted once at the farthest vertex of its
    BFS tree.  Disconnected components are appended in index order.
    """
    sub = adjacency[indices][:, indices].tocsr()
    sub.sort_indices()
    n = indices.size
    degrees = np.diff(sub.indptr)

    def bfs(start: int) -> np.ndarray:
        seen = np.zeros(n, dtype=bool)
        order = np.empty(n, dtype=int)
        count = 0
        queue = [start]
        seen[start] = True
        while count < n:
            if not queue:
                remaining = np.flatnonzero(~seen)
                queue = [int(remaining[0])]
                seen[queue[0]] = True
            head = 0
            while head < len(queue):
                vertex = queue[head]
                head += 1
                order[count] = vertex
                count += 1
                row = sub.indices[sub.indptr[vertex] : sub.indptr[vertex + 1]]
                for neighbour in row:
                    if not seen[neighbour]:
                        seen[neighbour] = True
                        queue.append(int(neighbour))
            queue = []
        return order

    start = int(np.lexsort((np.arange(n), degrees))[0])
    first_pass = bfs(start)
    order = bfs(int(first_pass[-1]))
    return indices[order]


def graph_bisection(adjacency: sp.spmatrix, num_parts: int) -> np.ndarray:
    """Assign part ids by recursive BFS-ordering bisection of a graph."""
    adjacency = sp.csr_matrix(adjacency)
    if adjacency.shape[0] != adjacency.shape[1]:
        raise AnalysisError("adjacency must be square")
    if num_parts < 1:
        raise AnalysisError(f"num_parts must be at least 1, got {num_parts}")
    assignments = np.zeros(adjacency.shape[0], dtype=int)

    def recurse(indices: np.ndarray, parts: int, first_part: int) -> None:
        if parts <= 1 or indices.size <= 1:
            assignments[indices] = first_part
            return
        order = _bfs_order(adjacency, indices)
        left_parts, right_parts = _split_counts(parts)
        cut = (indices.size * left_parts) // parts
        cut = min(max(cut, 1), indices.size - 1)
        recurse(np.sort(order[:cut]), left_parts, first_part)
        recurse(np.sort(order[cut:]), right_parts, first_part + left_parts)

    recurse(np.arange(adjacency.shape[0]), int(num_parts), 0)
    return assignments


def node_coordinates(node_names: Sequence[str]) -> Optional[np.ndarray]:
    """Parse generator-style node names into ``(row, col)`` coordinates.

    Returns ``None`` unless *every* name matches ``n{layer}_{row}_{col}``.
    The layer is deliberately dropped: via stacks then share a coordinate,
    so coordinate bisection cuts vertically through the metal stack and
    never strands an upper-layer node away from its tile.
    """
    coords = np.empty((len(node_names), 2), dtype=float)
    for i, name in enumerate(node_names):
        match = _NODE_NAME.match(name)
        if match is None:
            return None
        coords[i, 0] = float(match.group(2))
        coords[i, 1] = float(match.group(3))
    return coords


# ---------------------------------------------------------------------------
# Separator extraction and the public entry points
# ---------------------------------------------------------------------------
def _separate(structure: sp.csr_matrix, assignments: np.ndarray) -> GridPartition:
    """Promote every cross-part-coupled node to the interface."""
    n = structure.shape[0]
    coo = structure.tocoo()
    cross = assignments[coo.row] != assignments[coo.col]
    on_boundary = np.zeros(n, dtype=bool)
    on_boundary[coo.row[cross]] = True
    on_boundary[coo.col[cross]] = True
    num_parts = int(assignments.max()) + 1 if n else 1
    interiors = tuple(
        np.flatnonzero((assignments == part) & ~on_boundary)
        for part in range(num_parts)
    )
    return GridPartition(
        num_nodes=n,
        interiors=interiors,
        boundary=np.flatnonzero(on_boundary),
        assignments=assignments.copy(),
    )


def partition_matrix(
    matrix: sp.spmatrix,
    num_parts: int,
    coords: Optional[np.ndarray] = None,
) -> GridPartition:
    """Partition the index set of a sparse matrix into blocks + interface.

    Uses coordinate bisection when ``coords`` is given (one ``(row, col)``
    pair per node), otherwise deterministic graph bisection on the matrix's
    sparsity structure.  ``num_parts == 1`` yields a single all-interior
    block and an empty interface (the monolithic special case).
    """
    matrix = sp.csr_matrix(matrix)
    if matrix.shape[0] != matrix.shape[1]:
        raise AnalysisError("can only partition a square system matrix")
    if num_parts < 1:
        raise AnalysisError(f"num_parts must be at least 1, got {num_parts}")
    n = matrix.shape[0]
    num_parts = min(int(num_parts), max(n, 1))
    if num_parts == 1:
        return GridPartition(
            num_nodes=n,
            interiors=(np.arange(n),),
            boundary=np.empty(0, dtype=int),
            assignments=np.zeros(n, dtype=int),
        )
    if coords is not None:
        assignments = coordinate_bisection(coords, num_parts)
    else:
        assignments = graph_bisection(matrix, num_parts)
    return _separate(matrix, assignments)


def partition_system(stamped, num_parts: int) -> GridPartition:
    """Partition a :class:`~repro.grid.stamping.StampedSystem` (or anything
    with ``conductance``/``capacitance``/``node_names``).

    The separator is computed against the union sparsity of ``G`` and ``C``
    so that no electrical coupling -- resistive or capacitive -- ever crosses
    two block interiors.  Generator-style node names enable coordinate
    bisection; anything else falls back to graph bisection.
    """
    structure = union_structure(stamped.conductance, stamped.capacitance)
    names = getattr(stamped, "node_names", None)
    coords = node_coordinates(names) if names else None
    return partition_matrix(structure, num_parts, coords=coords)


def union_structure(*matrices: sp.spmatrix) -> sp.csr_matrix:
    """Sparsity union of several equally-shaped matrices (data all ones)."""
    total = None
    for matrix in matrices:
        part = sp.csr_matrix(matrix, copy=True)
        part.data = np.abs(part.data)
        total = part if total is None else total + part
    total.eliminate_zeros()
    total.data = np.ones_like(total.data)
    return total


def augment_partition(partition: GridPartition, num_blocks: int) -> GridPartition:
    """Lift a node partition to a ``kron(T, A)``-structured augmented system.

    The augmented (Galerkin) system stacks ``num_blocks`` chaos-coefficient
    copies of the node space: augmented index ``j * n + i`` is chaos block
    ``j`` of node ``i``.  Coupling between augmented indices exists only
    where the underlying nodes couple, so lifting every interior (and the
    interface) across all chaos blocks preserves the separator property.
    """
    if num_blocks < 1:
        raise AnalysisError(f"num_blocks must be at least 1, got {num_blocks}")
    n = partition.num_nodes
    offsets = np.arange(int(num_blocks)) * n

    def lift(indices: np.ndarray) -> np.ndarray:
        return np.sort((offsets[:, None] + indices[None, :]).ravel())

    return GridPartition(
        num_nodes=n * int(num_blocks),
        interiors=tuple(lift(interior) for interior in partition.interiors),
        boundary=lift(partition.boundary),
        assignments=np.tile(partition.assignments, int(num_blocks)),
    )


def default_atom_count(num_nodes: int) -> int:
    """The fixed fine-tiling size of the hierarchical engine.

    Deterministic in the node count alone -- never in the requested
    partition or worker count -- so the engine's statistics are bitwise
    reproducible across schedules (see :mod:`repro.partition.engine`).
    """
    if num_nodes >= 4096:
        return 8
    if num_nodes >= 1024:
        return 4
    if num_nodes >= 128:
        return 2
    return 1
