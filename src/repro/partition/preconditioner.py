"""Block-Jacobi / additive-Schwarz preconditioning for the CG path.

A one-level additive Schwarz preconditioner approximates ``A^{-1}`` by the
sum of (overlapping) block inverses:

``M^{-1} r = sum_k R_k^T A_k^{-1} R_k r``

where ``R_k`` restricts to block ``k`` (its partition cell plus ``overlap``
layers of structural neighbours) and ``A_k`` is the corresponding principal
submatrix, factored once with a sparse LU.  With ``overlap=0`` this is the
classic block-Jacobi preconditioner; one layer of overlap markedly improves
the interface error modes on meshes.

The preconditioner plugs into the existing conjugate-gradient solver either
directly (``ConjugateGradientSolver(matrix, preconditioner=schwarz)``) or
through the registered ``"schwarz-cg"`` backend::

    make_solver(matrix, method="schwarz-cg", num_parts=4, overlap=1)
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..errors import SolverError
from ..linalg.operator import is_operator
from ..sim.linear import ConjugateGradientSolver, DirectSolver, register_solver
from .partitioner import GridPartition, partition_matrix

__all__ = ["AdditiveSchwarzPreconditioner"]


class AdditiveSchwarzPreconditioner:
    """One-level additive Schwarz (block-Jacobi for ``overlap=0``).

    Parameters
    ----------
    matrix:
        The (square, sparse) system matrix.
    num_parts:
        Number of blocks when no ``partition`` is supplied.
    partition:
        Optional precomputed :class:`GridPartition`; its *assignments* (not
        the separator) define the non-overlapping cells, so interface nodes
        are covered too.
    overlap:
        Number of structural-neighbour layers added to every cell.
    """

    def __init__(
        self,
        matrix: sp.spmatrix,
        num_parts: int = 4,
        partition: Optional[GridPartition] = None,
        overlap: int = 1,
    ):
        matrix = sp.csr_matrix(matrix)
        if matrix.shape[0] != matrix.shape[1]:
            raise SolverError("Schwarz preconditioning requires a square matrix")
        if overlap < 0:
            raise SolverError(f"overlap must be non-negative, got {overlap}")
        if partition is None:
            partition = partition_matrix(matrix, num_parts)
        assignments = partition.assignments
        structure = matrix != 0
        self.shape = matrix.shape
        self.blocks = []
        for part in range(int(assignments.max()) + 1):
            members = np.flatnonzero(assignments == part)
            if not members.size:
                continue
            in_block = np.zeros(matrix.shape[0], dtype=bool)
            in_block[members] = True
            for _ in range(int(overlap)):
                reached = structure[np.flatnonzero(in_block)].tocoo().col
                in_block[reached] = True
            indices = np.flatnonzero(in_block)
            submatrix = matrix[indices][:, indices]
            self.blocks.append((indices, DirectSolver(submatrix)))
        if not self.blocks:
            raise SolverError("Schwarz preconditioner ended up with no blocks")
        self.num_blocks = len(self.blocks)
        self.overlap = int(overlap)

    def matvec(self, residual: np.ndarray) -> np.ndarray:
        """Apply ``M^{-1}`` to a residual vector."""
        residual = np.asarray(residual, dtype=float)
        out = np.zeros_like(residual)
        for indices, solver in self.blocks:
            out[indices] += solver.solve(residual[indices])
        return out

    def as_linear_operator(self) -> spla.LinearOperator:
        return spla.LinearOperator(self.shape, matvec=self.matvec)


@register_solver("schwarz-cg")
def _build_schwarz_cg(
    matrix: sp.spmatrix,
    num_parts: int = 4,
    overlap: int = 1,
    partition: Optional[GridPartition] = None,
    **options,
) -> ConjugateGradientSolver:
    # Lazy Kronecker-sum operators: the block factorisations need explicit
    # submatrices, so the preconditioner materialises the CSR once -- but the
    # CG iteration itself keeps applying the matrix-free operator.
    explicit = matrix.to_csr() if is_operator(matrix) else matrix
    schwarz = AdditiveSchwarzPreconditioner(
        explicit, num_parts=num_parts, partition=partition, overlap=overlap
    )
    return ConjugateGradientSolver(matrix, preconditioner=schwarz, **options)


_build_schwarz_cg.accepts_operator = True
#: Consumed by :class:`repro.stepping.SchurSystemAdapter`: this backend takes
#: a precomputed ``partition=`` for its block structure.
_build_schwarz_cg.accepts_partition = True
