"""Schur-complement port reduction of partitioned MNA systems.

Ordering the unknowns as ``[interior_1, ..., interior_K, interface]`` turns
the system matrix into the arrow form

``A = [[A_II, A_IB], [A_BI, A_BB]]``  with block-diagonal ``A_II``,

because a :class:`~repro.partition.partitioner.GridPartition` guarantees no
edge couples two different interiors.  Eliminating every interior block
independently condenses the system onto its interface (the *ports*):

``S = A_BB - sum_k A_BI,k A_II,k^{-1} A_IB,k``

The interface system ``S x_B = b_B - sum_k A_BI,k A_II,k^{-1} b_I,k`` is
solved once, and interiors are recovered exactly by back-substitution
``x_I,k = A_II,k^{-1} b_I,k - Y_k x_B`` with the precomputed port response
``Y_k = A_II,k^{-1} A_IB,k``.  The result equals a monolithic direct solve
to machine precision -- this is a reordered factorisation, not an
approximation.

:class:`SchurSolver` packages the reduction as a registered linear-solver
backend: ``make_solver(matrix, method="schur", num_parts=K)``.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp
from scipy.linalg import lu_factor, lu_solve

from ..errors import SolverError
from ..sim.linear import DirectSolver, LinearSolver, register_solver
from ..telemetry import current_telemetry
from .partitioner import GridPartition, partition_matrix

__all__ = [
    "AtomEliminator",
    "SerialAtomBackend",
    "SchurComplement",
    "SchurSolver",
]


class AtomEliminator:
    """Per-block elimination machinery: factor ``A_II,k``, condense, solve.

    The same class runs in the driver process (serial backend) and inside
    pool workers (:mod:`repro.partition.workers`), so the arithmetic -- and
    therefore every bit of the result -- is identical wherever a block is
    processed.
    """

    def __init__(self, matrix: sp.csr_matrix, interior: np.ndarray, boundary: np.ndarray):
        self.interior = np.asarray(interior, dtype=int)
        rows = matrix[self.interior]
        interior_block = rows[:, self.interior]
        to_boundary = sp.csr_matrix(rows[:, boundary])
        from_boundary = sp.csr_matrix(matrix[boundary][:, self.interior])
        # Restrict to the block's *local* ports: interface nodes actually
        # coupled to this interior (structurally, in either direction).
        local = np.union1d(
            np.unique(to_boundary.tocoo().col)
            if to_boundary.nnz
            else np.empty(0, dtype=int),
            np.unique(from_boundary.tocoo().row)
            if from_boundary.nnz
            else np.empty(0, dtype=int),
        ).astype(int)
        self.local_ports = local
        self._to_local = sp.csc_matrix(to_boundary)[:, local]
        self._from_local = sp.csr_matrix(from_boundary)[local, :]
        self._lu = DirectSolver(interior_block)

    def condense(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(Y_k, W_k, local_ports)``: port response and S-contribution."""
        if self.local_ports.size:
            response = self._lu.solve_many(self._to_local.toarray())
            response = np.atleast_2d(response.T).T
        else:
            response = np.empty((self.interior.size, 0))
        contribution = self._from_local @ response
        return response, np.asarray(contribution), self.local_ports

    def eliminate(self, b_interior: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Forward-eliminate one (or many) right-hand sides.

        Returns ``(z_k, g_k)`` with ``z_k = A_II,k^{-1} b_I,k`` and the local
        interface contribution ``g_k = A_BI,k z_k``.
        """
        z = self._lu.solve_many(b_interior)
        return z, self._from_local @ z


class SerialAtomBackend:
    """In-process block backend: builds and keeps every :class:`AtomEliminator`."""

    def __init__(self, matrix: sp.csr_matrix, partition: GridPartition):
        self._eliminators: Dict[int, AtomEliminator] = {
            k: AtomEliminator(matrix, interior, partition.boundary)
            for k, interior in enumerate(partition.interiors)
            if interior.size
        }

    def condense(self, atom_ids: Sequence[int]) -> Dict[int, Tuple]:
        return {k: self._eliminators[k].condense() for k in atom_ids}

    def eliminate(
        self, atom_ids: Sequence[int], b_slices: Sequence[np.ndarray]
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        return [self._eliminators[k].eliminate(b) for k, b in zip(atom_ids, b_slices)]


class SchurComplement:
    """Exact block factorisation of a partitioned sparse system.

    Parameters
    ----------
    matrix:
        The (square) system matrix.
    partition:
        A :class:`GridPartition` of its index set; interiors must not be
        coupled to each other (guaranteed when the partition was built
        against this matrix's structure -- pass ``validate=True`` to check).
    backend:
        Optional block backend (defaults to in-process elimination); the
        hierarchical engine substitutes a process-pool backend here.
    validate:
        Verify the separator property against ``matrix`` before factoring.
    """

    def __init__(
        self,
        matrix: sp.spmatrix,
        partition: GridPartition,
        backend=None,
        validate: bool = False,
    ):
        matrix = sp.csr_matrix(matrix)
        if matrix.shape[0] != matrix.shape[1]:
            raise SolverError("Schur reduction requires a square matrix")
        if matrix.shape[0] != partition.num_nodes:
            raise SolverError(
                f"matrix is {matrix.shape[0]}x{matrix.shape[1]} but the "
                f"partition covers {partition.num_nodes} nodes"
            )
        if validate:
            partition.validate_against(matrix)
        started = time.perf_counter()
        self.shape = matrix.shape
        self.partition = partition
        self._boundary = partition.boundary
        self._atom_ids = [k for k, interior in enumerate(partition.interiors) if interior.size]
        self._backend = backend if backend is not None else SerialAtomBackend(matrix, partition)

        # Condense every block onto its ports; the reduction order over
        # blocks is fixed (ascending block id) for bitwise reproducibility.
        with current_telemetry().span(
            "schur.factor", phase="factor", solver="schur", blocks=len(self._atom_ids)
        ):
            condensed = self._backend.condense(self._atom_ids)
            self._responses: Dict[int, np.ndarray] = {}
            self._local_ports: Dict[int, np.ndarray] = {}
            num_ports = self._boundary.size
            interface = matrix[self._boundary][:, self._boundary].toarray()
            for k in self._atom_ids:
                response, contribution, local = condensed[k]
                self._responses[k] = response
                self._local_ports[k] = local
                if local.size:
                    interface[np.ix_(local, local)] -= contribution
            self._interface_lu = lu_factor(interface) if num_ports else None
        self.factor_time = time.perf_counter() - started
        self.stats = {
            "method": "schur",
            "size": int(self.shape[0]),
            "factor_time_s": float(self.factor_time),
            **partition.stats(),
        }

    # ------------------------------------------------------------------ solve
    def solve(self, rhs: np.ndarray) -> np.ndarray:
        rhs = np.asarray(rhs, dtype=float)
        single = rhs.ndim == 1
        columns = rhs[:, None] if single else rhs
        if columns.shape[0] != self.shape[0]:
            raise SolverError(
                f"right-hand side has length {columns.shape[0]}, "
                f"expected {self.shape[0]}"
            )
        solution = self._solve_columns(columns)
        return solution[:, 0] if single else solution

    def solve_many(self, rhs_columns: np.ndarray) -> np.ndarray:
        return self.solve(rhs_columns)

    def _solve_columns(self, columns: np.ndarray) -> np.ndarray:
        interiors = self.partition.interiors
        boundary = self._boundary
        b_slices = [columns[interiors[k]] for k in self._atom_ids]
        eliminated = self._backend.eliminate(self._atom_ids, b_slices)

        reduced = columns[boundary].copy()
        for k, (_, g_local) in zip(self._atom_ids, eliminated):
            local = self._local_ports[k]
            if local.size:
                reduced[local] -= g_local
        if boundary.size:
            ports = lu_solve(self._interface_lu, reduced)
        else:
            ports = reduced

        solution = np.empty_like(columns)
        solution[boundary] = ports
        for k, (z, _) in zip(self._atom_ids, eliminated):
            local = self._local_ports[k]
            interior_solution = z
            if local.size:
                interior_solution = z - self._responses[k] @ ports[local]
            solution[interiors[k]] = interior_solution
        if not np.all(np.isfinite(solution)):
            raise SolverError("Schur solve produced non-finite values")
        return solution


class SchurSolver(LinearSolver):
    """Schur-complement direct solver, registered as the ``"schur"`` backend.

    Parameters
    ----------
    matrix:
        The system matrix.
    num_parts:
        Number of blocks to cut the system into (default 4).  More blocks
        shrink the per-block factorisations but grow the interface.
    partition:
        A precomputed :class:`GridPartition` (overrides ``num_parts``); must
        be a valid separator partition for ``matrix``.
    coords:
        Optional node coordinates enabling coordinate bisection (otherwise
        deterministic graph bisection on the matrix structure is used).

    The solver exposes partition and factorisation diagnostics as ``stats``.
    """

    def __init__(
        self,
        matrix: sp.spmatrix,
        num_parts: int = 4,
        partition: Optional[GridPartition] = None,
        coords: Optional[np.ndarray] = None,
    ):
        matrix = sp.csr_matrix(matrix)
        if matrix.shape[0] != matrix.shape[1]:
            raise SolverError("Schur reduction requires a square matrix")
        supplied = partition is not None
        if partition is None:
            partition = partition_matrix(matrix, num_parts, coords=coords)
        # Self-built partitions are separators by construction; only a
        # caller-supplied partition needs checking against this matrix.
        self._schur = SchurComplement(matrix, partition, validate=supplied)
        self.shape = matrix.shape
        self.partition = self._schur.partition
        self.stats = self._schur.stats

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        return self._schur.solve(rhs)

    def solve_many(self, rhs_columns: np.ndarray) -> np.ndarray:
        return self._schur.solve_many(rhs_columns)


@register_solver("schur")
def _build_schur(matrix: sp.spmatrix, **options) -> SchurSolver:
    return SchurSolver(matrix, **options)


#: Consumed by :class:`repro.stepping.SchurSystemAdapter`: this backend takes
#: a precomputed ``partition=`` for its block structure.
_build_schur.accepts_partition = True
