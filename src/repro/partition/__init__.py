"""Hierarchical partitioned power-grid analysis.

This package adds a divide-and-conquer layer on top of the monolithic
engines: a deterministic graph partitioner
(:mod:`~repro.partition.partitioner`), exact Schur-complement port
reduction (:mod:`~repro.partition.schur`), a block-Jacobi/additive-Schwarz
preconditioner for the CG path (:mod:`~repro.partition.preconditioner`),
process-pool block workers (:mod:`~repro.partition.workers`) and the
``hierarchical`` analysis engine (:mod:`~repro.partition.engine`).

Importing the package registers the ``schur`` and ``schwarz-cg`` solver
backends and the ``hierarchical`` engine::

    from repro.api import Analysis
    from repro.sim.linear import make_solver

    solver = make_solver(matrix, method="schur", num_parts=4)
    result = Analysis.from_spec(2500).run("hierarchical", partitions=4)

(:mod:`repro.api` imports this package, so going through the facade or the
CLI makes the backends available automatically.)
"""

from .engine import (
    run_hierarchical_dc,
    run_hierarchical_transient,
    system_partition,
)
from .partitioner import (
    GridPartition,
    augment_partition,
    coordinate_bisection,
    default_atom_count,
    graph_bisection,
    node_coordinates,
    partition_matrix,
    partition_system,
    union_structure,
)
from .preconditioner import AdditiveSchwarzPreconditioner
from .schur import SchurComplement, SchurSolver
from .workers import HierarchicalWorkerPool, split_groups

__all__ = [
    "GridPartition",
    "coordinate_bisection",
    "graph_bisection",
    "node_coordinates",
    "partition_matrix",
    "partition_system",
    "union_structure",
    "augment_partition",
    "default_atom_count",
    "SchurComplement",
    "SchurSolver",
    "AdditiveSchwarzPreconditioner",
    "HierarchicalWorkerPool",
    "split_groups",
    "system_partition",
    "run_hierarchical_transient",
    "run_hierarchical_dc",
]
