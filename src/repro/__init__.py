"""OPERA reproduction: stochastic power-grid analysis under process variations.

This package reproduces "Stochastic Power Grid Analysis Considering Process
Variations" (Ghanta, Vrudhula, Panda, Wang -- DATE 2005).  It contains:

* :mod:`repro.grid` -- power-grid netlists, a synthetic multi-layer grid
  generator, SPICE-subset I/O and MNA stamping;
* :mod:`repro.sim` -- deterministic DC and fixed-step transient simulation;
* :mod:`repro.stepping` -- the unified time-integration core every transient
  engine runs on: the :class:`~repro.stepping.SteppingScheme` registry
  (``trapezoidal``, ``backward-euler``, ``theta:<value>``), the shared
  :class:`~repro.stepping.StepLoop` driver and the per-engine system
  adapters (pick a scheme anywhere with ``scheme=...`` or ``--scheme``);
* :mod:`repro.variation` -- process-variation models (inter-die W/T/Leff,
  intra-die Vth/leakage) producing stochastic MNA systems;
* :mod:`repro.chaos` -- polynomial chaos bases (Hermite and the wider Askey
  scheme), Galerkin projection and stochastic-response containers;
* :mod:`repro.opera` -- the OPERA engine: stochastic DC/transient analysis
  with the decoupled special case for RHS-only variation;
* :mod:`repro.montecarlo` -- the Monte Carlo reference;
* :mod:`repro.analysis` -- accuracy metrics, Table-1 assembly and the
  Figure-1/2 distribution comparisons;
* :mod:`repro.linalg` -- matrix-free Kronecker-sum operators for the
  augmented Galerkin system (:class:`~repro.linalg.KronSumOperator`) and
  the block-preconditioned CG backends: ``mean-block-cg`` (one
  nominal-block LU preconditioning all chaos blocks at once) and
  ``degree-block-cg`` (exact LUs over chaos-degree bands);
* :mod:`repro.mor` -- PRIMA-style model order reduction (extension);
* :mod:`repro.api` -- the unified :class:`~repro.api.Analysis` session
  facade, the engine/solver registries and the shared result protocol;
* :mod:`repro.sweep` -- parallel execution of many analyses (node counts x
  engines x chaos orders x variation corners) over a process pool, with
  versioned benchmark artifacts and a wall-time regression gate
  (``opera-run sweep``);
* :mod:`repro.partition` -- hierarchical partitioned analysis: deterministic
  graph partitioning, exact Schur-complement port reduction (the ``schur``
  solver backend), block-Jacobi/additive-Schwarz preconditioning
  (``schwarz-cg``) and the ``hierarchical`` engine.

Quick start -- the :class:`~repro.api.Analysis` facade is the recommended
entry point.  A session owns the grid, the variation model and a cache of
expensive intermediates (chaos bases, factorisations, Galerkin assemblies),
so repeated runs reuse work::

    from repro import Analysis, GridSpec

    session = Analysis.from_spec(GridSpec(nx=30, ny=30, seed=1))
    session.with_transient(t_stop=8e-9, dt=0.2e-9)

    opera = session.run("opera", order=2)          # chaos expansion
    mc = session.run("montecarlo", samples=200)    # sampling reference
    print(session.summarize(opera))                # worst node, 3-sigma spread
    print(session.compare(samples=200))            # Table-1 accuracy/speed-up row

Every engine (``opera``, ``decoupled``, ``montecarlo``, ``deterministic``,
``randomwalk``, ``hierarchical``, plus anything added with
:func:`~repro.api.register_engine`)
returns an :class:`~repro.api.AnalysisResult`: uniform ``mean()``, ``std()``,
``worst_drop()``, ``wall_time`` and ``to_dict()``, with the engine-native
result reachable as ``result.raw``.  Linear-solver backends are pluggable the
same way through :func:`~repro.api.register_solver`.

The underlying free functions (``run_opera_transient``,
``run_monte_carlo_transient``, ``transient_analysis``, ...) remain available
for fine-grained control and backwards compatibility::

    from repro import (
        GridSpec, generate_power_grid, stamp,
        VariationSpec, build_stochastic_system,
        OperaConfig, TransientConfig, run_opera_transient, summarize,
    )

    netlist = generate_power_grid(GridSpec(nx=30, ny=30, seed=1))
    system = build_stochastic_system(stamp(netlist), VariationSpec.paper_defaults())
    config = OperaConfig(transient=TransientConfig(t_stop=8e-9, dt=0.2e-9), order=2)
    print(summarize(run_opera_transient(system, config)))
"""

from .api import (
    Analysis,
    AnalysisResult,
    ComparisonResult,
    compare,
    engine_names,
    register_engine,
    register_solver,
    solver_names,
    unregister_engine,
    unregister_solver,
)
from .analysis import (
    AccuracyMetrics,
    SobolIndices,
    Table1Row,
    ascii_histogram,
    compare_to_monte_carlo,
    drop_distribution_comparison,
    format_table1,
    sobol_indices,
    three_sigma_spread_percent,
    transient_total_indices,
)
from .chaos import (
    PolynomialChaosBasis,
    StochasticField,
    StochasticTransientResult,
)
from .errors import (
    AnalysisError,
    BasisError,
    ConvergenceError,
    NetlistError,
    ReproError,
    SolverError,
    SpiceFormatError,
    StampingError,
    StoreError,
    VariationModelError,
)
from .grid import (
    GridSpec,
    PowerGridNetlist,
    Technology,
    default_technology,
    generate_power_grid,
    read_spice,
    spec_for_node_count,
    stamp,
    write_spice,
)
from .linalg import KronSumOperator, MeanBlockCGSolver
from .montecarlo import MonteCarloConfig, run_monte_carlo_dc, run_monte_carlo_transient
from .opera import (
    OperaConfig,
    run_decoupled_transient,
    run_opera_dc,
    run_opera_transient,
    summarize,
)
from .sim import MNASystem, TransientConfig, dc_operating_point, transient_analysis
from .sweep import (
    BenchRecord,
    MemoryBackend,
    ShardedNpzBackend,
    SweepCase,
    SweepPlan,
    SweepRunner,
    record_from_store,
)
from .variation import (
    LeakageVariationSpec,
    RegionPartition,
    SpatialVariationSpec,
    VariationSpec,
    build_leakage_system,
    build_spatial_stochastic_system,
    build_stochastic_system,
)
from .waveforms import ClockedActivity, Constant, PeriodicPulse, PiecewiseLinear

__version__ = "0.1.0"

__all__ = [
    "Analysis",
    "AnalysisResult",
    "ComparisonResult",
    "compare",
    "engine_names",
    "register_engine",
    "register_solver",
    "solver_names",
    "unregister_engine",
    "unregister_solver",
    "BenchRecord",
    "MemoryBackend",
    "ShardedNpzBackend",
    "SweepCase",
    "SweepPlan",
    "SweepRunner",
    "record_from_store",
    "AccuracyMetrics",
    "Table1Row",
    "ascii_histogram",
    "compare_to_monte_carlo",
    "drop_distribution_comparison",
    "format_table1",
    "three_sigma_spread_percent",
    "PolynomialChaosBasis",
    "StochasticField",
    "StochasticTransientResult",
    "AnalysisError",
    "BasisError",
    "ConvergenceError",
    "NetlistError",
    "ReproError",
    "SolverError",
    "SpiceFormatError",
    "StampingError",
    "StoreError",
    "VariationModelError",
    "GridSpec",
    "PowerGridNetlist",
    "Technology",
    "default_technology",
    "generate_power_grid",
    "read_spice",
    "spec_for_node_count",
    "stamp",
    "write_spice",
    "KronSumOperator",
    "MeanBlockCGSolver",
    "MonteCarloConfig",
    "run_monte_carlo_dc",
    "run_monte_carlo_transient",
    "OperaConfig",
    "run_decoupled_transient",
    "run_opera_dc",
    "run_opera_transient",
    "summarize",
    "MNASystem",
    "TransientConfig",
    "dc_operating_point",
    "transient_analysis",
    "LeakageVariationSpec",
    "RegionPartition",
    "SpatialVariationSpec",
    "VariationSpec",
    "build_leakage_system",
    "build_spatial_stochastic_system",
    "build_stochastic_system",
    "SobolIndices",
    "sobol_indices",
    "transient_total_indices",
    "ClockedActivity",
    "Constant",
    "PeriodicPulse",
    "PiecewiseLinear",
    "__version__",
]
