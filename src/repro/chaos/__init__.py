"""Polynomial chaos machinery: bases, Galerkin projection, stochastic responses."""

from .askey import (
    jacobi_norm_squared,
    jacobi_value,
    laguerre_norm_squared,
    laguerre_value,
    legendre_norm_squared,
    legendre_value,
)
from .basis import (
    HermiteFamily,
    JacobiFamily,
    LaguerreFamily,
    LegendreFamily,
    PolynomialChaosBasis,
    PolynomialFamily,
    family_for,
)
from .density import edgeworth_pdf, gram_charlier_pdf, histogram_percentages
from .galerkin import (
    GalerkinSystem,
    assemble_augmented_matrix,
    assemble_augmented_rhs,
    split_augmented_vector,
)
from .hermite import (
    hermite_norm_squared,
    hermite_triple_product,
    hermite_value,
    normalized_hermite_triple,
    normalized_hermite_value,
)
from .multiindex import (
    multi_index_count,
    multi_index_degree,
    total_degree_multi_indices,
)
from .projection import (
    evaluate_expansion,
    lognormal_hermite_coefficients,
    project_function,
    project_samples,
)
from .quadrature import (
    gauss_hermite_rule,
    gauss_jacobi_rule,
    gauss_laguerre_rule,
    gauss_legendre_rule,
    tensor_grid,
)
from .response import StochasticField, StochasticTransientResult
from .triples import triple_product_matrix, triple_product_tensors

__all__ = [
    "jacobi_norm_squared",
    "jacobi_value",
    "laguerre_norm_squared",
    "laguerre_value",
    "legendre_norm_squared",
    "legendre_value",
    "HermiteFamily",
    "JacobiFamily",
    "LaguerreFamily",
    "LegendreFamily",
    "PolynomialChaosBasis",
    "PolynomialFamily",
    "family_for",
    "edgeworth_pdf",
    "gram_charlier_pdf",
    "histogram_percentages",
    "GalerkinSystem",
    "assemble_augmented_matrix",
    "assemble_augmented_rhs",
    "split_augmented_vector",
    "hermite_norm_squared",
    "hermite_triple_product",
    "hermite_value",
    "normalized_hermite_triple",
    "normalized_hermite_value",
    "multi_index_count",
    "multi_index_degree",
    "total_degree_multi_indices",
    "evaluate_expansion",
    "lognormal_hermite_coefficients",
    "project_function",
    "project_samples",
    "gauss_hermite_rule",
    "gauss_jacobi_rule",
    "gauss_laguerre_rule",
    "gauss_legendre_rule",
    "tensor_grid",
    "StochasticField",
    "StochasticTransientResult",
    "triple_product_matrix",
    "triple_product_tensors",
]
