"""Askey-scheme polynomial families beyond Hermite.

The paper points out that the chaos expansion is not tied to Gaussian germs:
the Askey scheme pairs each classical probability density with the polynomial
family that is orthogonal under it (and therefore gives the fastest-converging
expansion):

* uniform  -> Legendre,
* Gamma / exponential -> Laguerre,
* Beta -> Jacobi.

This module provides evaluation recurrences and norms for those families.
Triple products, where no convenient closed form exists, are computed exactly
with Gauss quadrature of sufficient order (the integrands are polynomials).
"""

from __future__ import annotations

from math import lgamma
from typing import Union

import numpy as np

from ..errors import BasisError

__all__ = [
    "legendre_value",
    "legendre_norm_squared",
    "laguerre_value",
    "laguerre_norm_squared",
    "jacobi_value",
    "jacobi_norm_squared",
]


def legendre_value(order: int, x: Union[float, np.ndarray]):
    """Legendre polynomial ``P_order`` on ``[-1, 1]`` via the Bonnet recurrence."""
    if order < 0:
        raise BasisError("polynomial order must be non-negative")
    x = np.asarray(x, dtype=float)
    previous = np.ones_like(x)
    if order == 0:
        return previous if previous.ndim else float(previous)
    current = x.copy()
    for k in range(1, order):
        previous, current = current, ((2 * k + 1) * x * current - k * previous) / (k + 1)
    return current if current.ndim else float(current)


def legendre_norm_squared(order: int) -> float:
    """``E[P_order(xi)^2]`` for ``xi`` uniform on ``[-1, 1]``: ``1 / (2*order + 1)``."""
    if order < 0:
        raise BasisError("polynomial order must be non-negative")
    return 1.0 / (2.0 * order + 1.0)


def laguerre_value(order: int, x: Union[float, np.ndarray]):
    """Laguerre polynomial ``L_order`` via the standard recurrence."""
    if order < 0:
        raise BasisError("polynomial order must be non-negative")
    x = np.asarray(x, dtype=float)
    previous = np.ones_like(x)
    if order == 0:
        return previous if previous.ndim else float(previous)
    current = 1.0 - x
    for k in range(1, order):
        previous, current = current, ((2 * k + 1 - x) * current - k * previous) / (k + 1)
    return current if current.ndim else float(current)


def laguerre_norm_squared(order: int) -> float:
    """``E[L_order(xi)^2]`` for ``xi ~ Exponential(1)``: exactly 1."""
    if order < 0:
        raise BasisError("polynomial order must be non-negative")
    return 1.0


def jacobi_value(order: int, x: Union[float, np.ndarray], alpha: float, beta: float):
    """Jacobi polynomial ``P_order^(alpha, beta)`` via the three-term recurrence."""
    if order < 0:
        raise BasisError("polynomial order must be non-negative")
    if alpha <= -1 or beta <= -1:
        raise BasisError("Jacobi parameters must exceed -1")
    x = np.asarray(x, dtype=float)
    previous = np.ones_like(x)
    if order == 0:
        return previous if previous.ndim else float(previous)
    current = 0.5 * (alpha - beta + (alpha + beta + 2.0) * x)
    for k in range(1, order):
        a1 = 2.0 * (k + 1) * (k + alpha + beta + 1) * (2 * k + alpha + beta)
        a2 = (2 * k + alpha + beta + 1) * (alpha**2 - beta**2)
        a3 = (2 * k + alpha + beta) * (2 * k + alpha + beta + 1) * (2 * k + alpha + beta + 2)
        a4 = 2.0 * (k + alpha) * (k + beta) * (2 * k + alpha + beta + 2)
        previous, current = current, ((a2 + a3 * x) * current - a4 * previous) / a1
    return current if current.ndim else float(current)


def jacobi_norm_squared(order: int, alpha: float, beta: float) -> float:
    """``E[P_order^(a,b)(xi)^2]`` under the normalised Beta density on ``[-1, 1]``.

    The classical (unnormalised) weight integral is divided by the weight's
    total mass so the result is an expectation under a probability measure.
    """
    if order < 0:
        raise BasisError("polynomial order must be non-negative")
    if alpha <= -1 or beta <= -1:
        raise BasisError("Jacobi parameters must exceed -1")

    def log_norm_integral(k: int) -> float:
        # integral of (1-x)^a (1+x)^b [P_k^(a,b)]^2 dx over [-1, 1]
        return (
            (alpha + beta + 1.0) * np.log(2.0)
            + lgamma(k + alpha + 1.0)
            + lgamma(k + beta + 1.0)
            - np.log(2.0 * k + alpha + beta + 1.0)
            - lgamma(k + alpha + beta + 1.0)
            - lgamma(k + 1.0)
        )

    def log_weight_mass() -> float:
        # integral of (1-x)^a (1+x)^b dx over [-1, 1]  (the k = 0 integral)
        return (
            (alpha + beta + 1.0) * np.log(2.0)
            + lgamma(alpha + 1.0)
            + lgamma(beta + 1.0)
            - lgamma(alpha + beta + 2.0)
        )

    return float(np.exp(log_norm_integral(order) - log_weight_mass()))
