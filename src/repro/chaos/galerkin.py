"""Galerkin (stochastic) projection of the MNA system.

This is the numerical heart of OPERA.  Writing the stochastic response as a
truncated chaos expansion ``x(s, xi) = sum_i a_i(s) psi_i(xi)`` and requiring
the truncation residual to be orthogonal to every retained basis function
(Eq. (10) of the paper) yields one large *deterministic* system

``(G~ + s C~) a(s) = U~(s)``

whose blocks are

``G~[j, i] = sum_m E[psi_m psi_i psi_j] G_m``

for a parameter expansion ``G(xi) = sum_m G_m psi_m(xi)`` (and likewise for
``C~``), while the right-hand-side block ``j`` is simply the ``j``-th chaos
coefficient of ``U`` because the basis is orthonormal.

The augmented matrices are sums of Kronecker products ``sum_m T_m (x) A_m``.
Two representations are available:

* ``assemble="explicit"`` materialises the CSR sum (one linear-time COO
  concatenation), preserving the sparsity of the grid matrices exactly --
  the input direct factorisations need;
* ``assemble="lazy"`` keeps the tensor structure as a
  :class:`~repro.linalg.KronSumOperator`, whose application costs a handful
  of small sparse-dense products instead of a ``P n``-sized matvec -- the
  representation the matrix-free ``mean-block-cg`` transient path runs on.

Either way the other representation stays reachable (``.conductance`` /
``.conductance_operator``) and is built once on first use.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from ..errors import AnalysisError, BasisError
from ..linalg.operator import KronSumOperator, kron_sum_csr
from .basis import PolynomialChaosBasis
from .triples import triple_product_tensors

__all__ = [
    "assemble_augmented_matrix",
    "assemble_augmented_operator",
    "assemble_augmented_rhs",
    "split_augmented_vector",
    "AugmentedRhsSeries",
    "GalerkinSystem",
]


def _checked_coefficients(
    coefficient_matrices: Mapping[int, sp.spmatrix],
) -> Mapping[int, sp.spmatrix]:
    if not coefficient_matrices:
        raise AnalysisError("at least the mean matrix (index 0) must be provided")
    shapes = {matrix.shape for matrix in coefficient_matrices.values()}
    if len(shapes) != 1:
        raise AnalysisError("all coefficient matrices must share the same shape")
    return coefficient_matrices


def assemble_augmented_matrix(
    basis: PolynomialChaosBasis,
    coefficient_matrices: Mapping[int, sp.spmatrix],
) -> sp.csr_matrix:
    """Assemble ``sum_m kron(T_m, A_m)`` for a parameter expansion of a matrix.

    Parameters
    ----------
    basis:
        The chaos basis of the response.
    coefficient_matrices:
        Mapping from *basis index* ``m`` to the matrix coefficient ``A_m`` of
        the parameter expansion ``A(xi) = sum_m A_m psi_m(xi)``.  For the
        paper's affine (first-order) parameter model the keys are ``0`` and
        the first-order indices of the varying germs.

    Every term's COO triplets are concatenated and folded in one pass, so
    assembly is linear in the total fill (the incremental ``sum + term``
    accumulation it replaces cost O(terms^2) CSR merges).
    """
    coefficient_matrices = _checked_coefficients(coefficient_matrices)
    tensors = triple_product_tensors(basis, coefficient_matrices.keys())
    return kron_sum_csr(
        [(tensors[m], sp.csr_matrix(matrix)) for m, matrix in coefficient_matrices.items()]
    )


def assemble_augmented_operator(
    basis: PolynomialChaosBasis,
    coefficient_matrices: Mapping[int, sp.spmatrix],
) -> KronSumOperator:
    """The lazy (matrix-free) counterpart of :func:`assemble_augmented_matrix`.

    Returns a :class:`~repro.linalg.KronSumOperator` representing
    ``sum_m T_m (x) A_m`` without materialising it; the triple-product
    factors come from the per-basis cache, so operators assembled for the
    same basis share them (and operator sums merge matching terms).
    """
    coefficient_matrices = _checked_coefficients(coefficient_matrices)
    tensors = triple_product_tensors(basis, coefficient_matrices.keys())
    return KronSumOperator(
        [(tensors[m], sp.csr_matrix(matrix)) for m, matrix in coefficient_matrices.items()]
    )


def assemble_augmented_rhs(
    basis: PolynomialChaosBasis,
    coefficient_vectors: Mapping[int, np.ndarray],
    num_nodes: int,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Stack the chaos coefficients of the excitation into the augmented RHS.

    Because the basis is orthonormal, the Galerkin right-hand side block ``j``
    equals the ``j``-th chaos coefficient of ``U`` (zero if absent).  Passing
    ``out`` reuses the caller's buffer (it is zeroed first) so a stepping
    loop does not allocate ``P * n`` zeros per step.
    """
    size = basis.size * num_nodes
    if out is None:
        out = np.zeros(size)
    else:
        if out.shape != (size,):
            raise AnalysisError(f"out buffer has shape {out.shape}, expected ({size},)")
        out[:] = 0.0
    for index, vector in coefficient_vectors.items():
        if not (0 <= index < basis.size):
            raise BasisError(
                f"excitation refers to basis index {index}, but the basis has "
                f"only {basis.size} functions (order too low?)"
            )
        vector = np.asarray(vector, dtype=float)
        if vector.shape != (num_nodes,):
            raise AnalysisError(
                f"excitation coefficient {index} has shape {vector.shape}, "
                f"expected ({num_nodes},)"
            )
        out[index * num_nodes : (index + 1) * num_nodes] = vector
    return out


def split_augmented_vector(vector: np.ndarray, basis_size: int, num_nodes: int) -> np.ndarray:
    """Reshape a stacked augmented vector into ``(basis_size, num_nodes)`` blocks."""
    vector = np.asarray(vector, dtype=float)
    expected = basis_size * num_nodes
    if vector.shape != (expected,):
        raise AnalysisError(f"augmented vector has shape {vector.shape}, expected ({expected},)")
    return vector.reshape(basis_size, num_nodes)


class AugmentedRhsSeries:
    """Per-basis-index excitation waveforms precomputed over a whole time axis.

    A transient loop that calls ``galerkin.rhs(t)`` per step rebuilds the
    excitation's coefficient dictionary and restacks it into a fresh
    ``P * n`` vector every time.  This object evaluates the coefficients for
    *all* time points up front (one waveform array of shape
    ``(num_times, n)`` per active basis index) so that the per-step right-
    hand side becomes a plain buffer fill: :meth:`fill` copies the active
    rows into the caller's buffer and touches nothing else.
    """

    def __init__(self, galerkin: "GalerkinSystem", times: np.ndarray):
        times = np.asarray(times, dtype=float)
        self.times = times
        self.basis_size = galerkin.basis.size
        self.num_nodes = galerkin.num_nodes
        waveforms: Dict[int, np.ndarray] = {}
        for step, t in enumerate(times):
            for index, vector in galerkin.excitation_coefficients(float(t)).items():
                if not (0 <= index < self.basis_size):
                    raise BasisError(
                        f"excitation refers to basis index {index}, but the basis "
                        f"has only {self.basis_size} functions (order too low?)"
                    )
                table = waveforms.get(index)
                if table is None:
                    table = np.zeros((times.size, self.num_nodes))
                    waveforms[index] = table
                vector = np.asarray(vector, dtype=float)
                if vector.shape != (self.num_nodes,):
                    raise AnalysisError(
                        f"excitation coefficient {index} has shape {vector.shape}, "
                        f"expected ({self.num_nodes},)"
                    )
                table[step] = vector
        self._waveforms: Tuple[Tuple[int, np.ndarray], ...] = tuple(
            sorted(waveforms.items())
        )

    @property
    def active_indices(self) -> Tuple[int, ...]:
        """Basis indices with a non-trivial excitation waveform."""
        return tuple(index for index, _ in self._waveforms)

    @property
    def waveforms(self) -> Tuple[Tuple[int, np.ndarray], ...]:
        """The ``(basis index, (num_times, n) table)`` pairs, sorted by index.

        Consumers (e.g. the macromodel reduction of :mod:`repro.mor`) must
        treat the tables as read-only.
        """
        return self._waveforms

    def fill(self, step: int, out: np.ndarray) -> np.ndarray:
        """Write ``U~(times[step])`` into ``out`` (shape ``(P * n,)``).

        The buffer is zeroed (a vectorised memset, trivial next to the dict
        rebuild and restack this replaces) and the active waveform rows are
        copied in; nothing is allocated.
        """
        expected = self.basis_size * self.num_nodes
        if out.shape != (expected,):
            raise AnalysisError(f"out buffer has shape {out.shape}, expected ({expected},)")
        out[:] = 0.0
        blocks = out.reshape(self.basis_size, self.num_nodes)
        for index, table in self._waveforms:
            blocks[index] = table[step]
        return out

    def dense(self) -> np.ndarray:
        """The full stacked RHS for every time point, shape ``(T, P * n)``."""
        table = np.zeros((self.times.size, self.basis_size * self.num_nodes))
        for step in range(self.times.size):
            self.fill(step, table[step])
        return table


class GalerkinSystem:
    """The augmented deterministic system produced by the Galerkin projection.

    Parameters
    ----------
    basis:
        Chaos basis of the response.
    conductance_coefficients, capacitance_coefficients:
        Parameter expansions of ``G`` and ``C`` (basis index -> matrix).
    excitation_coefficients:
        Callable returning the excitation's chaos coefficients at a time.
    num_nodes:
        Number of grid nodes (the block size).
    assemble:
        ``"explicit"`` (default) materialises the augmented CSR matrices
        eagerly; ``"lazy"`` builds matrix-free
        :class:`~repro.linalg.KronSumOperator` representations instead.
        Both representations remain reachable either way -- the one not
        chosen is built (and cached) on first property access.

    Attributes
    ----------
    conductance, capacitance:
        Augmented CSR matrices ``G~`` and ``C~`` of Eq. (19).
    conductance_operator, capacitance_operator:
        The same matrices as lazy Kronecker-sum operators.
    """

    _MODES = ("explicit", "lazy")

    def __init__(
        self,
        basis: PolynomialChaosBasis,
        conductance_coefficients: Mapping[int, sp.spmatrix],
        capacitance_coefficients: Mapping[int, sp.spmatrix],
        excitation_coefficients: Callable[[float], Mapping[int, np.ndarray]],
        num_nodes: int,
        assemble: str = "explicit",
    ):
        if assemble not in self._MODES:
            raise AnalysisError(
                f"assemble must be one of {', '.join(map(repr, self._MODES))}; "
                f"got {assemble!r}"
            )
        self.basis = basis
        self.num_nodes = int(num_nodes)
        self.assemble = assemble
        self._conductance_coefficients = _checked_coefficients(conductance_coefficients)
        self._capacitance_coefficients = _checked_coefficients(capacitance_coefficients)
        self._excitation_coefficients = excitation_coefficients
        self._matrices: Dict[str, sp.csr_matrix] = {}
        self._operators: Dict[str, KronSumOperator] = {}
        if assemble == "explicit":
            self._matrices["conductance"] = assemble_augmented_matrix(
                basis, conductance_coefficients
            )
            self._matrices["capacitance"] = assemble_augmented_matrix(
                basis, capacitance_coefficients
            )
        else:
            self._operators["conductance"] = assemble_augmented_operator(
                basis, conductance_coefficients
            )
            self._operators["capacitance"] = assemble_augmented_operator(
                basis, capacitance_coefficients
            )

    # ------------------------------------------------------- representations
    def _matrix(self, which: str) -> sp.csr_matrix:
        matrix = self._matrices.get(which)
        if matrix is None:
            operator = self._operators.get(which)
            matrix = operator.to_csr() if operator is not None else None
            if matrix is None:  # pragma: no cover - defensive
                raise AnalysisError(f"no representation of the {which} matrix")
            self._matrices[which] = matrix
        return matrix

    def _operator(self, which: str) -> KronSumOperator:
        operator = self._operators.get(which)
        if operator is None:
            coefficients = (
                self._conductance_coefficients
                if which == "conductance"
                else self._capacitance_coefficients
            )
            operator = assemble_augmented_operator(self.basis, coefficients)
            self._operators[which] = operator
        return operator

    @property
    def conductance_coefficients(self) -> Mapping[int, sp.spmatrix]:
        """The parameter expansion of ``G`` (basis index -> matrix)."""
        return self._conductance_coefficients

    @property
    def capacitance_coefficients(self) -> Mapping[int, sp.spmatrix]:
        """The parameter expansion of ``C`` (basis index -> matrix)."""
        return self._capacitance_coefficients

    @property
    def conductance(self) -> sp.csr_matrix:
        """Explicit augmented conductance ``G~`` (materialised on first use)."""
        return self._matrix("conductance")

    @property
    def capacitance(self) -> sp.csr_matrix:
        """Explicit augmented capacitance ``C~`` (materialised on first use)."""
        return self._matrix("capacitance")

    @property
    def conductance_operator(self) -> KronSumOperator:
        """Matrix-free view of ``G~`` (built and cached on first use)."""
        return self._operator("conductance")

    @property
    def capacitance_operator(self) -> KronSumOperator:
        """Matrix-free view of ``C~`` (built and cached on first use)."""
        return self._operator("capacitance")

    @property
    def size(self) -> int:
        """Dimension of the augmented system (= basis.size * num_nodes)."""
        return self.basis.size * self.num_nodes

    # ------------------------------------------------------------ excitation
    def excitation_coefficients(self, t: float) -> Mapping[int, np.ndarray]:
        """The excitation's chaos coefficients at time ``t`` (basis index -> vector)."""
        return self._excitation_coefficients(t)

    def rhs(self, t: float, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Stacked augmented right-hand side ``U~(t)`` (optionally into ``out``)."""
        return assemble_augmented_rhs(
            self.basis, self._excitation_coefficients(t), self.num_nodes, out=out
        )

    def rhs_series(self, times: np.ndarray) -> AugmentedRhsSeries:
        """Precompute the excitation waveforms over a whole time axis.

        The returned :class:`AugmentedRhsSeries` turns the per-step RHS of a
        transient loop into a buffer fill; see its docstring.
        """
        return AugmentedRhsSeries(self, times)

    def split(self, augmented_vector: np.ndarray) -> np.ndarray:
        """Reshape an augmented solution into ``(basis.size, num_nodes)``."""
        return split_augmented_vector(augmented_vector, self.basis.size, self.num_nodes)
