"""Galerkin (stochastic) projection of the MNA system.

This is the numerical heart of OPERA.  Writing the stochastic response as a
truncated chaos expansion ``x(s, xi) = sum_i a_i(s) psi_i(xi)`` and requiring
the truncation residual to be orthogonal to every retained basis function
(Eq. (10) of the paper) yields one large *deterministic* system

``(G~ + s C~) a(s) = U~(s)``

whose blocks are

``G~[j, i] = sum_m E[psi_m psi_i psi_j] G_m``

for a parameter expansion ``G(xi) = sum_m G_m psi_m(xi)`` (and likewise for
``C~``), while the right-hand-side block ``j`` is simply the ``j``-th chaos
coefficient of ``U`` because the basis is orthonormal.

The augmented matrices are assembled as sums of Kronecker products so the
sparsity of the grid matrices is preserved exactly.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np
import scipy.sparse as sp

from ..errors import AnalysisError, BasisError
from .basis import PolynomialChaosBasis
from .triples import triple_product_tensors

__all__ = [
    "assemble_augmented_matrix",
    "assemble_augmented_rhs",
    "split_augmented_vector",
    "GalerkinSystem",
]


def assemble_augmented_matrix(
    basis: PolynomialChaosBasis,
    coefficient_matrices: Mapping[int, sp.spmatrix],
) -> sp.csr_matrix:
    """Assemble ``sum_m kron(T_m, A_m)`` for a parameter expansion of a matrix.

    Parameters
    ----------
    basis:
        The chaos basis of the response.
    coefficient_matrices:
        Mapping from *basis index* ``m`` to the matrix coefficient ``A_m`` of
        the parameter expansion ``A(xi) = sum_m A_m psi_m(xi)``.  For the
        paper's affine (first-order) parameter model the keys are ``0`` and
        the first-order indices of the varying germs.
    """
    if not coefficient_matrices:
        raise AnalysisError("at least the mean matrix (index 0) must be provided")
    shapes = {matrix.shape for matrix in coefficient_matrices.values()}
    if len(shapes) != 1:
        raise AnalysisError("all coefficient matrices must share the same shape")

    tensors = triple_product_tensors(basis, coefficient_matrices.keys())
    augmented = None
    for m, matrix in coefficient_matrices.items():
        term = sp.kron(tensors[m], sp.csr_matrix(matrix), format="csr")
        augmented = term if augmented is None else augmented + term
    return augmented.tocsr()


def assemble_augmented_rhs(
    basis: PolynomialChaosBasis,
    coefficient_vectors: Mapping[int, np.ndarray],
    num_nodes: int,
) -> np.ndarray:
    """Stack the chaos coefficients of the excitation into the augmented RHS.

    Because the basis is orthonormal, the Galerkin right-hand side block ``j``
    equals the ``j``-th chaos coefficient of ``U`` (zero if absent).
    """
    stacked = np.zeros(basis.size * num_nodes)
    for index, vector in coefficient_vectors.items():
        if not (0 <= index < basis.size):
            raise BasisError(
                f"excitation refers to basis index {index}, but the basis has "
                f"only {basis.size} functions (order too low?)"
            )
        vector = np.asarray(vector, dtype=float)
        if vector.shape != (num_nodes,):
            raise AnalysisError(
                f"excitation coefficient {index} has shape {vector.shape}, "
                f"expected ({num_nodes},)"
            )
        stacked[index * num_nodes : (index + 1) * num_nodes] = vector
    return stacked


def split_augmented_vector(vector: np.ndarray, basis_size: int, num_nodes: int) -> np.ndarray:
    """Reshape a stacked augmented vector into ``(basis_size, num_nodes)`` blocks."""
    vector = np.asarray(vector, dtype=float)
    expected = basis_size * num_nodes
    if vector.shape != (expected,):
        raise AnalysisError(f"augmented vector has shape {vector.shape}, expected ({expected},)")
    return vector.reshape(basis_size, num_nodes)


class GalerkinSystem:
    """The augmented deterministic system produced by the Galerkin projection.

    Attributes
    ----------
    basis:
        Chaos basis of the response.
    conductance, capacitance:
        Augmented matrices ``G~`` and ``C~`` of Eq. (19).
    rhs:
        Callable returning the stacked augmented right-hand side at a time.
    num_nodes:
        Number of grid nodes (the block size).
    """

    def __init__(
        self,
        basis: PolynomialChaosBasis,
        conductance_coefficients: Mapping[int, sp.spmatrix],
        capacitance_coefficients: Mapping[int, sp.spmatrix],
        excitation_coefficients: Callable[[float], Mapping[int, np.ndarray]],
        num_nodes: int,
    ):
        self.basis = basis
        self.num_nodes = int(num_nodes)
        self.conductance = assemble_augmented_matrix(basis, conductance_coefficients)
        self.capacitance = assemble_augmented_matrix(basis, capacitance_coefficients)
        self._excitation_coefficients = excitation_coefficients

    @property
    def size(self) -> int:
        """Dimension of the augmented system (= basis.size * num_nodes)."""
        return self.basis.size * self.num_nodes

    def rhs(self, t: float) -> np.ndarray:
        """Stacked augmented right-hand side ``U~(t)``."""
        return assemble_augmented_rhs(self.basis, self._excitation_coefficients(t), self.num_nodes)

    def split(self, augmented_vector: np.ndarray) -> np.ndarray:
        """Reshape an augmented solution into ``(basis.size, num_nodes)``."""
        return split_augmented_vector(augmented_vector, self.basis.size, self.num_nodes)
