"""Polynomial chaos basis construction.

:class:`PolynomialChaosBasis` is the central object of the OPERA method: the
finite, orthonormal set of multivariate polynomials ``{psi_0, ..., psi_N}``
in the germ variables onto which the stochastic voltage response is
projected (Eq. (8) of the paper).  Each germ dimension carries its own
univariate family selected by the Askey scheme (Hermite for Gaussian germs,
Legendre for uniform, ...), and the multivariate functions are products of
univariate ones indexed by total-degree multi-indices.

All basis functions are normalised to unit variance, so that

* ``E[psi_i psi_j] = delta_ij``,
* the mean of an expansion is its 0-th coefficient,
* the variance is the sum of squares of the remaining coefficients.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import BasisError
from .askey import (
    jacobi_norm_squared,
    jacobi_value,
    laguerre_norm_squared,
    laguerre_value,
    legendre_norm_squared,
    legendre_value,
)
from .hermite import hermite_norm_squared, hermite_triple_product, hermite_value
from .multiindex import MultiIndex, total_degree_multi_indices
from .quadrature import (
    gauss_hermite_rule,
    gauss_jacobi_rule,
    gauss_laguerre_rule,
    gauss_legendre_rule,
    tensor_grid,
)

__all__ = [
    "PolynomialFamily",
    "HermiteFamily",
    "LegendreFamily",
    "LaguerreFamily",
    "JacobiFamily",
    "family_for",
    "PolynomialChaosBasis",
]


class PolynomialFamily(abc.ABC):
    """A univariate orthogonal polynomial family paired with its germ density."""

    name: str = "abstract"

    @abc.abstractmethod
    def evaluate(self, order: int, x):
        """Evaluate the (unnormalised) polynomial of ``order`` at ``x``."""

    @abc.abstractmethod
    def norm_squared(self, order: int) -> float:
        """``E[phi_order(xi)^2]`` under the germ density."""

    @abc.abstractmethod
    def quadrature(self, num_points: int):
        """Gauss rule ``(nodes, weights)`` integrating against the germ density."""

    @abc.abstractmethod
    def sample_germ(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw germ samples."""

    def triple_product(self, a: int, b: int, c: int) -> float:
        """``E[phi_a phi_b phi_c]``; default implementation uses exact quadrature."""
        num_points = (a + b + c) // 2 + 1
        nodes, weights = self.quadrature(max(num_points, 1))
        values = (self.evaluate(a, nodes) * self.evaluate(b, nodes) * self.evaluate(c, nodes))
        return float(np.sum(weights * values))

    def evaluate_normalized(self, order: int, x):
        """Unit-variance polynomial of ``order`` at ``x``."""
        return self.evaluate(order, x) / np.sqrt(self.norm_squared(order))


class HermiteFamily(PolynomialFamily):
    """Probabilists' Hermite polynomials; germ is standard normal."""

    name = "hermite"

    def evaluate(self, order, x):
        return hermite_value(order, x)

    def norm_squared(self, order):
        return hermite_norm_squared(order)

    def quadrature(self, num_points):
        return gauss_hermite_rule(num_points)

    def sample_germ(self, rng, size):
        return rng.standard_normal(size)

    def triple_product(self, a, b, c):
        return hermite_triple_product(a, b, c)


class LegendreFamily(PolynomialFamily):
    """Legendre polynomials; germ is uniform on ``[-1, 1]``."""

    name = "legendre"

    def evaluate(self, order, x):
        return legendre_value(order, x)

    def norm_squared(self, order):
        return legendre_norm_squared(order)

    def quadrature(self, num_points):
        return gauss_legendre_rule(num_points)

    def sample_germ(self, rng, size):
        return rng.uniform(-1.0, 1.0, size)


class LaguerreFamily(PolynomialFamily):
    """Laguerre polynomials; germ is a unit-rate exponential."""

    name = "laguerre"

    def evaluate(self, order, x):
        return laguerre_value(order, x)

    def norm_squared(self, order):
        return laguerre_norm_squared(order)

    def quadrature(self, num_points):
        return gauss_laguerre_rule(num_points)

    def sample_germ(self, rng, size):
        return rng.exponential(1.0, size)


class JacobiFamily(PolynomialFamily):
    """Jacobi polynomials; germ has a Beta-type density on ``[-1, 1]``."""

    name = "jacobi"

    def __init__(self, alpha: float = 1.0, beta: float = 1.0):
        if alpha <= -1 or beta <= -1:
            raise BasisError("Jacobi parameters must exceed -1")
        self.alpha = float(alpha)
        self.beta = float(beta)

    def evaluate(self, order, x):
        return jacobi_value(order, x, self.alpha, self.beta)

    def norm_squared(self, order):
        return jacobi_norm_squared(order, self.alpha, self.beta)

    def quadrature(self, num_points):
        return gauss_jacobi_rule(num_points, self.alpha, self.beta)

    def sample_germ(self, rng, size):
        b = rng.beta(self.beta + 1.0, self.alpha + 1.0, size)
        return 2.0 * b - 1.0


_FAMILY_ALIASES = {
    "hermite": HermiteFamily,
    "gaussian": HermiteFamily,
    "normal": HermiteFamily,
    "lognormal": HermiteFamily,
    "legendre": LegendreFamily,
    "uniform": LegendreFamily,
    "laguerre": LaguerreFamily,
    "gamma": LaguerreFamily,
    "exponential": LaguerreFamily,
}


def family_for(name: Union[str, PolynomialFamily]) -> PolynomialFamily:
    """Resolve a family name (or pass through an instance) to a family object."""
    if isinstance(name, PolynomialFamily):
        return name
    key = str(name).lower()
    if key in ("jacobi", "beta"):
        return JacobiFamily()
    try:
        return _FAMILY_ALIASES[key]()
    except KeyError:
        raise BasisError(f"unknown polynomial family {name!r}") from None


class PolynomialChaosBasis:
    """Orthonormal total-degree polynomial chaos basis.

    Parameters
    ----------
    families:
        Either a single family (name or instance) shared by all dimensions,
        or one family per germ dimension.
    num_vars:
        Number of germ variables (required when a single family is given).
    order:
        Total-degree truncation order ``p``.
    """

    def __init__(
        self,
        families: Union[str, PolynomialFamily, Sequence[Union[str, PolynomialFamily]]],
        order: int,
        num_vars: Optional[int] = None,
    ):
        if order < 0:
            raise BasisError("expansion order must be non-negative")
        if isinstance(families, (str, PolynomialFamily)):
            if num_vars is None:
                raise BasisError("num_vars is required when a single family is given")
            family_list = [family_for(families) for _ in range(num_vars)]
        else:
            family_list = [family_for(f) for f in families]
            if num_vars is not None and num_vars != len(family_list):
                raise BasisError("num_vars disagrees with the number of families")
        if not family_list:
            raise BasisError("at least one germ dimension is required")

        self.families: Tuple[PolynomialFamily, ...] = tuple(family_list)
        self.order = int(order)
        self.multi_indices: Tuple[MultiIndex, ...] = tuple(
            total_degree_multi_indices(len(self.families), self.order)
        )
        self._index_lookup: Dict[MultiIndex, int] = {
            mi: i for i, mi in enumerate(self.multi_indices)
        }
        self._norms = np.array(
            [
                np.prod([f.norm_squared(k) for f, k in zip(self.families, mi)])
                for mi in self.multi_indices
            ]
        )

    # ------------------------------------------------------------------ sizes
    @property
    def num_vars(self) -> int:
        return len(self.families)

    @property
    def size(self) -> int:
        """Number of retained basis functions (``N + 1`` in the paper)."""
        return len(self.multi_indices)

    def __len__(self) -> int:
        return self.size

    def degree(self, index: int) -> int:
        """Total degree of basis function ``index``."""
        return int(sum(self.multi_indices[index]))

    @property
    def degrees(self) -> np.ndarray:
        return np.array([sum(mi) for mi in self.multi_indices], dtype=int)

    # ---------------------------------------------------------------- lookups
    def index_of(self, multi_index: Sequence[int]) -> int:
        """Position of a multi-index in the basis ordering."""
        key = tuple(int(k) for k in multi_index)
        try:
            return self._index_lookup[key]
        except KeyError:
            raise BasisError(
                f"multi-index {key} is not part of this order-{self.order} basis"
            ) from None

    def first_order_index(self, var: int) -> int:
        """Index of the degree-1 basis function of germ variable ``var``."""
        if not (0 <= var < self.num_vars):
            raise BasisError(f"variable index {var} out of range")
        unit = tuple(1 if d == var else 0 for d in range(self.num_vars))
        return self.index_of(unit)

    # -------------------------------------------------------------- evaluation
    def evaluate(self, xi: np.ndarray) -> np.ndarray:
        """Evaluate all (orthonormal) basis functions at germ points.

        Parameters
        ----------
        xi:
            Either one germ point of shape ``(num_vars,)`` or a batch of
            shape ``(m, num_vars)``.

        Returns
        -------
        Array of shape ``(size,)`` or ``(m, size)`` respectively.
        """
        xi = np.asarray(xi, dtype=float)
        single = xi.ndim == 1
        points = xi[None, :] if single else xi
        if points.shape[1] != self.num_vars:
            raise BasisError(
                f"germ points have {points.shape[1]} dimensions, expected {self.num_vars}"
            )

        max_degree_per_dim = [max(mi[d] for mi in self.multi_indices) for d in range(self.num_vars)]
        # Pre-compute univariate values per dimension and degree.
        univariate: List[np.ndarray] = []
        for d, family in enumerate(self.families):
            table = np.empty((max_degree_per_dim[d] + 1, points.shape[0]))
            for k in range(max_degree_per_dim[d] + 1):
                table[k] = family.evaluate(k, points[:, d])
            univariate.append(table)

        values = np.empty((points.shape[0], self.size))
        for i, mi in enumerate(self.multi_indices):
            product = np.ones(points.shape[0])
            for d, k in enumerate(mi):
                if k:
                    product = product * univariate[d][k]
            values[:, i] = product / np.sqrt(self._norms[i])
        return values[0] if single else values

    # ------------------------------------------------------------- inner prods
    def norm_squared(self, index: int) -> float:
        """Norm of the basis function; identically 1 because it is normalised."""
        if not (0 <= index < self.size):
            raise BasisError(f"basis index {index} out of range")
        return 1.0

    def triple_product(self, i: int, j: int, k: int) -> float:
        """``E[psi_i psi_j psi_k]`` of orthonormal basis functions."""
        mi, mj, mk = (
            self.multi_indices[i],
            self.multi_indices[j],
            self.multi_indices[k],
        )
        value = 1.0
        for d, family in enumerate(self.families):
            value *= family.triple_product(mi[d], mj[d], mk[d])
            if value == 0.0:
                return 0.0
        return value / np.sqrt(self._norms[i] * self._norms[j] * self._norms[k])

    # ---------------------------------------------------------------- sampling
    def sample_germ(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` germ vectors, shape ``(size, num_vars)``."""
        return np.column_stack([family.sample_germ(rng, size) for family in self.families])

    def quadrature(self, points_per_dim: int):
        """Tensor-product Gauss rule matching the germ densities."""
        rules = [family.quadrature(points_per_dim) for family in self.families]
        return tensor_grid(rules)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = ",".join(f.name for f in self.families)
        return (
            f"PolynomialChaosBasis(order={self.order}, num_vars={self.num_vars}, "
            f"families=[{names}], size={self.size})"
        )
