"""Gauss quadrature rules with respect to probability measures.

All rules returned here integrate against *probability densities* (weights sum
to one), so ``sum(w_i * f(x_i))`` approximates ``E[f(xi)]`` directly.  They
are used to compute inner products for polynomial families without analytic
triple-product formulas (Legendre, Laguerre, Jacobi) and to project nonlinear
excitations onto the chaos basis.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np
from scipy import special as sps

from ..errors import BasisError

__all__ = [
    "gauss_hermite_rule",
    "gauss_legendre_rule",
    "gauss_laguerre_rule",
    "gauss_jacobi_rule",
    "tensor_grid",
]

QuadratureRule = Tuple[np.ndarray, np.ndarray]


def _check_points(num_points: int) -> None:
    if num_points < 1:
        raise BasisError("a quadrature rule needs at least one point")


def gauss_hermite_rule(num_points: int) -> QuadratureRule:
    """Gauss-Hermite rule for the standard normal density (probabilists' form)."""
    _check_points(num_points)
    nodes, weights = sps.roots_hermitenorm(num_points)
    weights = weights / np.sqrt(2.0 * np.pi)
    return nodes, weights


def gauss_legendre_rule(num_points: int) -> QuadratureRule:
    """Gauss-Legendre rule for the uniform density on ``[-1, 1]``."""
    _check_points(num_points)
    nodes, weights = sps.roots_legendre(num_points)
    return nodes, weights / 2.0


def gauss_laguerre_rule(num_points: int) -> QuadratureRule:
    """Gauss-Laguerre rule for the unit-rate exponential density on ``[0, inf)``."""
    _check_points(num_points)
    nodes, weights = sps.roots_laguerre(num_points)
    return nodes, weights


def gauss_jacobi_rule(num_points: int, alpha: float, beta: float) -> QuadratureRule:
    """Gauss-Jacobi rule for the Beta-type density ``(1-x)^alpha (1+x)^beta`` on ``[-1, 1]``.

    The weights are normalised so they sum to one, i.e. the rule integrates
    against the corresponding Beta probability density.
    """
    _check_points(num_points)
    if alpha <= -1 or beta <= -1:
        raise BasisError("Jacobi parameters must exceed -1")
    nodes, weights = sps.roots_jacobi(num_points, alpha, beta)
    weights = weights / np.sum(weights)
    return nodes, weights


def tensor_grid(rules: Sequence[QuadratureRule]) -> QuadratureRule:
    """Tensor product of one-dimensional rules.

    Returns points of shape ``(M, d)`` and weights of shape ``(M,)`` where
    ``M`` is the product of the one-dimensional point counts and ``d`` the
    number of dimensions.
    """
    if not rules:
        raise BasisError("tensor_grid needs at least one rule")
    point_arrays = [np.asarray(nodes, dtype=float) for nodes, _ in rules]
    weight_arrays = [np.asarray(weights, dtype=float) for _, weights in rules]

    mesh = np.meshgrid(*point_arrays, indexing="ij")
    points = np.column_stack([m.reshape(-1) for m in mesh])

    weight_mesh = np.meshgrid(*weight_arrays, indexing="ij")
    weights = np.ones(points.shape[0])
    for w in weight_mesh:
        weights = weights * w.reshape(-1)
    return points, weights
