"""Multi-index bookkeeping for multivariate polynomial chaos bases.

A polynomial chaos basis function in ``n`` germ variables is identified by a
multi-index ``alpha = (a_1, ..., a_n)``: the basis function is the product of
the univariate polynomials of degree ``a_d`` in each dimension.  A total-order
truncation at order ``p`` keeps every multi-index with ``sum(alpha) <= p``;
the number of retained functions is ``C(n + p, p)``, which is the ``N + 1``
appearing in Eq. (8) of the paper.

The ordering produced here is *graded*: indices are sorted by total degree
first, and within a degree the first variable's exponent decreases last, so
that

* index 0 is the constant function,
* indices ``1 .. n`` are the first-order terms, in variable order.

The second property is what lets an affine parameter dependence
``A_0 + sum_k A_k xi_k`` be treated as a chaos expansion whose only nonzero
coefficients sit at indices ``0`` and ``k + 1``.
"""

from __future__ import annotations

from math import comb
from typing import Iterator, List, Sequence, Tuple

from ..errors import BasisError

__all__ = [
    "compositions",
    "total_degree_multi_indices",
    "multi_index_count",
    "multi_index_degree",
]

MultiIndex = Tuple[int, ...]


def compositions(total: int, parts: int) -> Iterator[MultiIndex]:
    """Yield all ways of writing ``total`` as an ordered sum of ``parts`` >= 0 terms.

    The enumeration assigns the largest exponent to the *first* variable
    first, so for ``total=1`` the order is ``(1,0,...), (0,1,...), ...``.
    """
    if parts < 1:
        raise BasisError("parts must be at least 1")
    if parts == 1:
        yield (total,)
        return
    for head in range(total, -1, -1):
        for tail in compositions(total - head, parts - 1):
            yield (head,) + tail


def total_degree_multi_indices(num_vars: int, order: int) -> List[MultiIndex]:
    """All multi-indices of ``num_vars`` variables with total degree <= ``order``."""
    if num_vars < 1:
        raise BasisError("num_vars must be at least 1")
    if order < 0:
        raise BasisError("order must be non-negative")
    indices: List[MultiIndex] = []
    for degree in range(order + 1):
        indices.extend(compositions(degree, num_vars))
    return indices


def multi_index_count(num_vars: int, order: int) -> int:
    """Number of total-degree multi-indices: ``C(num_vars + order, order)``.

    This is the ``N + 1`` of Eq. (8): ``sum_{k=0}^{p} C(n - 1 + k, k)``.
    """
    if num_vars < 1:
        raise BasisError("num_vars must be at least 1")
    if order < 0:
        raise BasisError("order must be non-negative")
    return comb(num_vars + order, order)


def multi_index_degree(index: Sequence[int]) -> int:
    """Total degree of a multi-index."""
    return int(sum(index))
