"""Triple-product tensors used by the Galerkin projection.

The Galerkin system of Eq. (19) couples the expansion coefficients through
the expectations ``E[psi_m psi_i psi_j]`` where ``psi_m`` runs over the basis
functions that appear in the parameter expansion of ``G`` and ``C`` (for the
paper's affine model these are the constant and the first-order functions).
This module materialises those expectations as sparse matrices
``T_m[i, j] = E[psi_m psi_i psi_j]`` so that the augmented matrix is a sum of
Kronecker products ``sum_m kron(T_m, A_m)``.
"""

from __future__ import annotations

from typing import Dict, Iterable

import scipy.sparse as sp

from ..errors import BasisError
from .basis import PolynomialChaosBasis

__all__ = ["triple_product_matrix", "triple_product_tensors"]


def triple_product_matrix(basis: PolynomialChaosBasis, m: int) -> sp.csr_matrix:
    """Sparse matrix ``T_m`` with entries ``E[psi_m psi_i psi_j]``.

    For ``m = 0`` (the constant basis function) this is the identity because
    the basis is orthonormal.
    """
    size = basis.size
    if not (0 <= m < size):
        raise BasisError(f"parameter basis index {m} out of range")
    if m == 0:
        return sp.identity(size, format="csr")

    rows = []
    cols = []
    values = []
    for i in range(size):
        for j in range(i, size):
            value = basis.triple_product(m, i, j)
            if value != 0.0:
                rows.append(i)
                cols.append(j)
                values.append(value)
                if i != j:
                    rows.append(j)
                    cols.append(i)
                    values.append(value)
    return sp.coo_matrix((values, (rows, cols)), shape=(size, size)).tocsr()


def triple_product_tensors(
    basis: PolynomialChaosBasis, parameter_indices: Iterable[int]
) -> Dict[int, sp.csr_matrix]:
    """Triple-product matrices for every parameter basis index requested.

    The matrices are cached on the basis object (per parameter index, which
    subsumes caching per key-set): assembling the conductance *and* the
    capacitance Galerkin matrix -- or re-assembling after a variation-model
    swap on the same basis -- computes each ``T_m`` exactly once.  The cache
    also guarantees that repeated calls return the *same* matrix objects,
    which lets :class:`repro.linalg.KronSumOperator` merge terms sharing a
    left factor across operator sums.
    """
    cache: Dict[int, sp.csr_matrix] = basis.__dict__.setdefault("_triple_product_cache", {})
    tensors: Dict[int, sp.csr_matrix] = {}
    for m in set(parameter_indices):
        if m not in cache:
            cache[m] = triple_product_matrix(basis, m)
        tensors[m] = cache[m]
    return tensors
