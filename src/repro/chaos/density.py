"""Probability-density reconstruction from moments or samples.

The paper notes that once the chaos coefficients (and hence the moments) of
the voltage response are known, series expansions such as Gram-Charlier or
Edgeworth can recover the probability density directly, without Monte Carlo.
This module implements both series plus the sampled-histogram fallback used
by the Figure 1 / Figure 2 reproductions.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from ..errors import AnalysisError

__all__ = [
    "hermite_probabilists",
    "gram_charlier_pdf",
    "edgeworth_pdf",
    "histogram_percentages",
]


def hermite_probabilists(order: int, x: np.ndarray) -> np.ndarray:
    """Probabilists' Hermite polynomial (local helper to avoid circular import)."""
    x = np.asarray(x, dtype=float)
    previous = np.ones_like(x)
    if order == 0:
        return previous
    current = x.copy()
    for k in range(1, order):
        previous, current = current, x * current - k * previous
    return current


def _standard_normal_pdf(z: np.ndarray) -> np.ndarray:
    return np.exp(-0.5 * z * z) / math.sqrt(2.0 * math.pi)


def gram_charlier_pdf(
    x: np.ndarray,
    mean: float,
    variance: float,
    skewness: float = 0.0,
    excess_kurtosis: float = 0.0,
) -> np.ndarray:
    """Gram-Charlier A-series density with third and fourth order corrections.

    ``f(x) = phi(z)/sigma * [1 + g1/6 He3(z) + g2/24 He4(z)]`` with
    ``z = (x - mean)/sigma``, ``g1`` the skewness and ``g2`` the excess
    kurtosis.  The series may become slightly negative far in the tails for
    strongly non-Gaussian inputs; values are clipped at zero.
    """
    if variance <= 0:
        raise AnalysisError("variance must be positive")
    sigma = math.sqrt(variance)
    z = (np.asarray(x, dtype=float) - mean) / sigma
    correction = (
        1.0
        + skewness / 6.0 * hermite_probabilists(3, z)
        + excess_kurtosis / 24.0 * hermite_probabilists(4, z)
    )
    density = _standard_normal_pdf(z) / sigma * correction
    return np.clip(density, 0.0, None)


def edgeworth_pdf(
    x: np.ndarray,
    mean: float,
    variance: float,
    skewness: float = 0.0,
    excess_kurtosis: float = 0.0,
) -> np.ndarray:
    """Edgeworth expansion of the density (adds the skewness-squared term).

    ``f(x) = phi(z)/sigma * [1 + g1/6 He3 + g2/24 He4 + g1^2/72 He6]``.
    """
    if variance <= 0:
        raise AnalysisError("variance must be positive")
    sigma = math.sqrt(variance)
    z = (np.asarray(x, dtype=float) - mean) / sigma
    correction = (
        1.0
        + skewness / 6.0 * hermite_probabilists(3, z)
        + excess_kurtosis / 24.0 * hermite_probabilists(4, z)
        + skewness**2 / 72.0 * hermite_probabilists(6, z)
    )
    density = _standard_normal_pdf(z) / sigma * correction
    return np.clip(density, 0.0, None)


def histogram_percentages(
    samples: np.ndarray,
    bins: int = 30,
    value_range: Optional[Tuple[float, float]] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Histogram of samples expressed as percentage of occurrences per bin.

    This is the format of Figures 1 and 2 of the paper ("% of occurrences"
    against "voltage drop as % VDD").  Returns ``(bin_centers, percentages)``.
    """
    samples = np.asarray(samples, dtype=float)
    if samples.size == 0:
        raise AnalysisError("cannot histogram an empty sample set")
    counts, edges = np.histogram(samples, bins=bins, range=value_range)
    centers = 0.5 * (edges[:-1] + edges[1:])
    percentages = 100.0 * counts / samples.size
    return centers, percentages
