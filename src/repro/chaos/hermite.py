"""Probabilists' Hermite polynomials and their expectation algebra.

The Hermite polynomials ``He_k`` are orthogonal under the standard normal
density: ``E[He_a(xi) He_b(xi)] = a! * delta_ab``.  Besides evaluation, this
module provides the analytic triple-product expectations

``E[He_a He_b He_c] = a! b! c! / ((s-a)! (s-b)! (s-c)!)``

(for ``a + b + c = 2 s`` even and the triangle condition satisfied; zero
otherwise), which are the only quantities the Galerkin projection of the
paper needs for Gaussian germs.
"""

from __future__ import annotations

from math import factorial
from typing import Union

import numpy as np

from ..errors import BasisError

__all__ = [
    "hermite_value",
    "hermite_norm_squared",
    "hermite_triple_product",
    "normalized_hermite_value",
    "normalized_hermite_triple",
]


def hermite_value(order: int, x: Union[float, np.ndarray]) -> Union[float, np.ndarray]:
    """Evaluate the probabilists' Hermite polynomial ``He_order`` at ``x``.

    Uses the stable three-term recurrence
    ``He_{k+1}(x) = x He_k(x) - k He_{k-1}(x)``.
    """
    if order < 0:
        raise BasisError("polynomial order must be non-negative")
    x = np.asarray(x, dtype=float)
    previous = np.ones_like(x)
    if order == 0:
        return previous if previous.ndim else float(previous)
    current = x.copy()
    for k in range(1, order):
        previous, current = current, x * current - k * previous
    return current if current.ndim else float(current)


def hermite_norm_squared(order: int) -> float:
    """``E[He_order(xi)^2] = order!`` for a standard normal ``xi``."""
    if order < 0:
        raise BasisError("polynomial order must be non-negative")
    return float(factorial(order))


def hermite_triple_product(a: int, b: int, c: int) -> float:
    """Exact expectation ``E[He_a(xi) He_b(xi) He_c(xi)]`` for standard normal ``xi``."""
    if min(a, b, c) < 0:
        raise BasisError("polynomial orders must be non-negative")
    total = a + b + c
    if total % 2:
        return 0.0
    s = total // 2
    if s < a or s < b or s < c:
        return 0.0
    return float(
        factorial(a)
        * factorial(b)
        * factorial(c)
        / (factorial(s - a) * factorial(s - b) * factorial(s - c))
    )


def normalized_hermite_value(order: int, x):
    """Orthonormal Hermite polynomial ``He_order / sqrt(order!)`` at ``x``."""
    return hermite_value(order, x) / np.sqrt(hermite_norm_squared(order))


def normalized_hermite_triple(a: int, b: int, c: int) -> float:
    """Triple product of *orthonormal* Hermite polynomials."""
    scale = np.sqrt(hermite_norm_squared(a) * hermite_norm_squared(b) * hermite_norm_squared(c))
    return hermite_triple_product(a, b, c) / scale
