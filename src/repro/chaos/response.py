"""Containers for stochastic responses expressed as chaos expansions.

Once the Galerkin system has been solved, every node voltage is an explicit
polynomial in the germ variables:

``v_node(t, xi) = sum_i a_i,node(t) psi_i(xi)``.

Because the basis is orthonormal the first two moments are immediate --
mean ``a_0`` and variance ``sum_{i >= 1} a_i^2`` (the orthonormal-basis form
of Eq. (23)) -- and any other statistic (higher moments, densities,
percentiles) can be obtained by directly sampling the polynomial, which costs
microseconds instead of a grid solve per sample.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from ..errors import AnalysisError
from .basis import PolynomialChaosBasis

__all__ = ["StochasticField", "StochasticTransientResult"]


class StochasticField:
    """A vector-valued random field expressed in a chaos basis.

    ``coefficients`` has shape ``(basis.size, num_values)``: one chaos
    coefficient vector per retained basis function.
    """

    def __init__(
        self,
        basis: PolynomialChaosBasis,
        coefficients: np.ndarray,
        vdd: Optional[float] = None,
        node_names: Optional[Sequence[str]] = None,
    ):
        coefficients = np.asarray(coefficients, dtype=float)
        if coefficients.ndim == 1:
            coefficients = coefficients[:, None]
        if coefficients.shape[0] != basis.size:
            raise AnalysisError(
                f"coefficients have {coefficients.shape[0]} rows, expected {basis.size}"
            )
        self.basis = basis
        self.coefficients = coefficients
        self.vdd = vdd
        self.node_names = tuple(node_names) if node_names is not None else None

    # ------------------------------------------------------------------ sizes
    @property
    def num_values(self) -> int:
        return self.coefficients.shape[1]

    # ---------------------------------------------------------------- moments
    @property
    def mean(self) -> np.ndarray:
        """Mean of every entry (the coefficient of the constant function)."""
        return self.coefficients[0].copy()

    @property
    def variance(self) -> np.ndarray:
        """Variance of every entry: sum of squared higher-order coefficients."""
        if self.basis.size == 1:
            return np.zeros(self.num_values)
        return np.sum(self.coefficients[1:] ** 2, axis=0)

    @property
    def std(self) -> np.ndarray:
        return np.sqrt(self.variance)

    def central_moments(
        self,
        max_order: int = 4,
        num_samples: int = 20000,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Central moments 1..max_order estimated by sampling the expansion.

        Returns an array of shape ``(max_order, num_values)``; the first row
        is identically zero (first central moment).
        """
        if max_order < 1:
            raise AnalysisError("max_order must be at least 1")
        samples = self.sample(num_samples=num_samples, rng=rng)
        centered = samples - self.mean[None, :]
        return np.stack([np.mean(centered**k, axis=0) for k in range(1, max_order + 1)])

    def skewness(self, num_samples: int = 20000, rng=None) -> np.ndarray:
        """Skewness of every entry (sampled from the expansion)."""
        moments = self.central_moments(3, num_samples=num_samples, rng=rng)
        variance = np.maximum(moments[1], 1e-300)
        return moments[2] / variance**1.5

    def kurtosis(self, num_samples: int = 20000, rng=None) -> np.ndarray:
        """Excess kurtosis of every entry (sampled from the expansion)."""
        moments = self.central_moments(4, num_samples=num_samples, rng=rng)
        variance = np.maximum(moments[1], 1e-300)
        return moments[3] / variance**2 - 3.0

    # --------------------------------------------------------------- sampling
    def evaluate(self, xi: np.ndarray) -> np.ndarray:
        """Evaluate the field at germ values ``xi`` (single point or batch)."""
        psi = self.basis.evaluate(xi)
        return psi @ self.coefficients

    def sample(self, num_samples: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Draw ``num_samples`` realisations; shape ``(num_samples, num_values)``."""
        rng = rng or np.random.default_rng()
        xi = self.basis.sample_germ(rng, num_samples)
        return self.evaluate(xi)

    def percentiles(
        self,
        q: Union[float, Sequence[float]],
        num_samples: int = 20000,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Percentiles of every entry estimated by sampling the expansion."""
        samples = self.sample(num_samples=num_samples, rng=rng)
        return np.percentile(samples, q, axis=0)

    # ------------------------------------------------------------------ drops
    def drop_field(self) -> "StochasticField":
        """Return the field of voltage drops ``VDD - v`` (requires ``vdd``)."""
        if self.vdd is None:
            raise AnalysisError("this field carries no VDD reference")
        coefficients = -self.coefficients.copy()
        coefficients[0] += self.vdd
        return StochasticField(self.basis, coefficients, vdd=self.vdd, node_names=self.node_names)


class StochasticTransientResult:
    """Stochastic voltage waveforms: one chaos expansion per node per time point.

    The result can be held in two forms:

    * ``coefficients`` of shape ``(num_times, basis.size, num_nodes)`` --
      the full analytic representation (default);
    * statistics only (``mean``/``variance`` arrays of shape
      ``(num_times, num_nodes)``) for very large grids.
    """

    def __init__(
        self,
        times: np.ndarray,
        basis: PolynomialChaosBasis,
        vdd: float,
        coefficients: Optional[np.ndarray] = None,
        mean: Optional[np.ndarray] = None,
        variance: Optional[np.ndarray] = None,
        node_names: Optional[Sequence[str]] = None,
        wall_time: Optional[float] = None,
    ):
        self.times = np.asarray(times, dtype=float)
        self.basis = basis
        self.vdd = float(vdd)
        self.node_names = tuple(node_names) if node_names is not None else None
        self.wall_time = wall_time

        if coefficients is not None:
            coefficients = np.asarray(coefficients, dtype=float)
            if coefficients.ndim != 3 or coefficients.shape[0] != self.times.size:
                raise AnalysisError(
                    "coefficients must have shape (num_times, basis.size, num_nodes)"
                )
            if coefficients.shape[1] != basis.size:
                raise AnalysisError("coefficient block count must match the basis size")
            self.coefficients = coefficients
            self._mean = coefficients[:, 0, :]
            self._variance = (
                np.sum(coefficients[:, 1:, :] ** 2, axis=1)
                if basis.size > 1
                else np.zeros_like(self._mean)
            )
        else:
            if mean is None or variance is None:
                raise AnalysisError("either full coefficients or mean+variance must be provided")
            self.coefficients = None
            self._mean = np.asarray(mean, dtype=float)
            self._variance = np.asarray(variance, dtype=float)
            if self._mean.shape != self._variance.shape:
                raise AnalysisError("mean and variance must have the same shape")
            if self._mean.shape[0] != self.times.size:
                raise AnalysisError("statistics must have one row per time point")

    # ------------------------------------------------------------------ sizes
    @property
    def num_times(self) -> int:
        return self.times.size

    @property
    def num_nodes(self) -> int:
        return self._mean.shape[1]

    @property
    def has_coefficients(self) -> bool:
        return self.coefficients is not None

    # ---------------------------------------------------------------- voltages
    @property
    def mean_voltage(self) -> np.ndarray:
        """Mean node voltages, shape ``(num_times, num_nodes)``."""
        return self._mean

    @property
    def variance(self) -> np.ndarray:
        """Voltage variance, shape ``(num_times, num_nodes)``."""
        return self._variance

    @property
    def std_voltage(self) -> np.ndarray:
        return np.sqrt(np.maximum(self._variance, 0.0))

    # ------------------------------------------------------------------ drops
    @property
    def mean_drop(self) -> np.ndarray:
        """Mean voltage drops ``VDD - v``."""
        return self.vdd - self._mean

    @property
    def std_drop(self) -> np.ndarray:
        """Standard deviation of the drops (same as the voltage sigma)."""
        return self.std_voltage

    def peak_mean_drop_per_node(self) -> np.ndarray:
        """Worst mean drop over time for each node."""
        return np.max(self.mean_drop, axis=0)

    def worst_node(self) -> int:
        """Node with the largest worst-case mean drop."""
        return int(np.argmax(self.peak_mean_drop_per_node()))

    def peak_time_index(self, node: int) -> int:
        """Time index at which ``node`` sees its largest mean drop."""
        return int(np.argmax(self.mean_drop[:, node]))

    # ------------------------------------------------------------ distributions
    def field_at(self, time_index: int) -> StochasticField:
        """Full stochastic field (all nodes) at one time index."""
        if not self.has_coefficients:
            raise AnalysisError("this result was stored in statistics-only mode")
        return StochasticField(
            self.basis,
            self.coefficients[time_index],
            vdd=self.vdd,
            node_names=self.node_names,
        )

    def node_expansion(self, node: int, time_index: int) -> np.ndarray:
        """Chaos coefficients of one node voltage at one time index."""
        if not self.has_coefficients:
            raise AnalysisError("this result was stored in statistics-only mode")
        return self.coefficients[time_index, :, node].copy()

    def drop_samples(
        self,
        node: int,
        time_index: int,
        num_samples: int = 10000,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Sample the voltage-drop distribution of one node at one time index."""
        if not self.has_coefficients:
            raise AnalysisError("this result was stored in statistics-only mode")
        rng = rng or np.random.default_rng()
        xi = self.basis.sample_germ(rng, num_samples)
        psi = self.basis.evaluate(xi)
        voltages = psi @ self.coefficients[time_index, :, node]
        return self.vdd - voltages

    def node_index(self, name: str) -> int:
        """Index of a named node."""
        if self.node_names is None:
            raise AnalysisError("this result carries no node names")
        try:
            return self.node_names.index(name)
        except ValueError:
            raise AnalysisError(f"unknown node {name!r}") from None
