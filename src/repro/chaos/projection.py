"""Projection of functions of the germ variables onto a chaos basis.

Inputs that depend nonlinearly on the germs (for example lognormal leakage
currents, or measured response surfaces) must be expressed as chaos
coefficients before they can enter the Galerkin system.  Because the basis is
orthonormal, the coefficients are plain inner products

``c_i = E[f(xi) psi_i(xi)]``

evaluated here either analytically (lognormal / exponential of a Gaussian) or
with tensor-product Gauss quadrature.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from ..errors import BasisError
from .basis import PolynomialChaosBasis

__all__ = [
    "project_function",
    "project_samples",
    "lognormal_hermite_coefficients",
    "evaluate_expansion",
]


def project_function(
    basis: PolynomialChaosBasis,
    function: Callable[[np.ndarray], np.ndarray],
    points_per_dim: int = 8,
) -> np.ndarray:
    """Project ``function`` of the germ vector onto the basis by quadrature.

    Parameters
    ----------
    basis:
        Target chaos basis.
    function:
        Vectorised callable mapping germ points of shape ``(m, num_vars)`` to
        values of shape ``(m,)`` or ``(m, k)``.
    points_per_dim:
        Number of Gauss points per germ dimension; must satisfy
        ``2 * points_per_dim - 1 >= order + degree(function)`` for an exact
        projection of polynomial inputs.
    """
    points, weights = basis.quadrature(points_per_dim)
    values = np.asarray(function(points), dtype=float)
    if values.shape[0] != points.shape[0]:
        raise BasisError("function must return one value (row) per quadrature point")
    psi = basis.evaluate(points)  # (m, size)
    # c_i = sum_q w_q f(x_q) psi_i(x_q)
    return np.tensordot(psi * weights[:, None], values, axes=(0, 0))


def project_samples(
    basis: PolynomialChaosBasis, germ_samples: np.ndarray, values: np.ndarray
) -> np.ndarray:
    """Least-squares (regression) projection from Monte Carlo style samples.

    This is the non-intrusive alternative to Galerkin projection: given
    germ samples and the corresponding model evaluations, fit the chaos
    coefficients in the least-squares sense.
    """
    psi = basis.evaluate(np.asarray(germ_samples, dtype=float))
    values = np.asarray(values, dtype=float)
    if psi.shape[0] != values.shape[0]:
        raise BasisError("need one model evaluation per germ sample")
    coefficients, *_ = np.linalg.lstsq(psi, values, rcond=None)
    return coefficients


def lognormal_hermite_coefficients(
    log_sigma: float, max_degree: int, mean_preserving: bool = False
) -> np.ndarray:
    """Hermite coefficients of ``exp(s * xi)`` (or its mean-preserving variant).

    With orthonormal Hermite polynomials ``psi_k``:

    ``exp(s*xi) = exp(s^2/2) * sum_k (s^k / sqrt(k!)) psi_k(xi)``.

    When ``mean_preserving`` is true the function expanded is
    ``exp(s*xi - s^2/2)`` whose mean is exactly one.
    """
    if log_sigma < 0:
        raise BasisError("log_sigma must be non-negative")
    if max_degree < 0:
        raise BasisError("max_degree must be non-negative")
    scale = 1.0 if mean_preserving else math.exp(0.5 * log_sigma**2)
    return np.array(
        [scale * log_sigma**k / math.sqrt(math.factorial(k)) for k in range(max_degree + 1)]
    )


def evaluate_expansion(
    basis: PolynomialChaosBasis, coefficients: np.ndarray, xi: np.ndarray
) -> np.ndarray:
    """Evaluate a chaos expansion at germ points.

    ``coefficients`` has shape ``(size,)`` or ``(size, k)``; the result has
    shape ``()``/``(k,)`` for a single point or ``(m,)``/``(m, k)`` for a
    batch of ``m`` points.
    """
    coefficients = np.asarray(coefficients, dtype=float)
    if coefficients.shape[0] != basis.size:
        raise BasisError(f"expected {basis.size} coefficient rows, got {coefficients.shape[0]}")
    psi = basis.evaluate(xi)
    return psi @ coefficients
