"""Pluggable coefficient fitters for regression polynomial chaos.

A *fitter* solves the linear least-squares (or penalised) problem

``min_c  || targets - matrix @ c ||``

for one design matrix and any number of right-hand sides at once, and is
looked up by name through a small registry (the same pattern as the solver
and engine registries)::

    @register_fitter("my-fitter")
    def fit_my_way(matrix, targets, **options):
        return coefficients, {"note": "diagnostics dict"}

Built-ins:

``ols`` (aliases ``lstsq``, ``least-squares``)
    Ordinary least squares via :func:`numpy.linalg.lstsq` -- one multi-RHS
    solve shared by every target column.
``ridge``
    Tikhonov-regularised normal equations.  ``alpha`` may be a single value
    or a sequence, in which case K-fold cross-validation picks the winner.
``omp``
    Orthogonal matching pursuit: greedy support growth with an exact
    least-squares refit per step -- the classic sparse-recovery baseline.
``lasso``
    Coordinate-descent L1 regression on the precomputed Gram matrix.  With
    ``alpha=None`` (default) the penalty is selected by K-fold
    cross-validation over an automatic log-spaced grid.

Cross-validation folds are derived from an explicit ``cv_seed`` through one
:func:`numpy.random.default_rng` permutation, so model selection is fully
deterministic and -- because fitting always happens in the driver process --
independent of how many workers sampled the training data.

The penalised fitters never shrink the *mean*: by convention column
``intercept_column`` (default 0, the constant basis function) is exempt from
the L1/L2 penalty, so ``mean()`` of a fitted expansion stays unbiased.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import RegressionError
from ..registry import Registry

__all__ = [
    "FitResult",
    "fit_coefficients",
    "register_fitter",
    "unregister_fitter",
    "fitter_names",
    "get_fitter",
    "kfold_indices",
]

_FITTERS = Registry("fitter", RegressionError)


def register_fitter(name: str, fitter=None, *, overwrite: bool = False):
    """Register ``fitter(matrix, targets, **options) -> (coefficients, diagnostics)``."""
    return _FITTERS.register(name, fitter, overwrite=overwrite)


def unregister_fitter(name: str) -> None:
    """Remove a registered fitter."""
    _FITTERS.unregister(name)


def fitter_names() -> tuple:
    """Names of all registered fitters, sorted."""
    return _FITTERS.names()


def get_fitter(name: str):
    """Resolve a fitter name (raises :class:`RegressionError` with a listing)."""
    return _FITTERS.get(name)


@dataclass(frozen=True)
class FitResult:
    """Fitted coefficients plus fitter-specific diagnostics.

    ``coefficients`` mirrors the dimensionality of the targets that were
    passed in: ``(num_terms,)`` for a single right-hand side,
    ``(num_terms, num_rhs)`` for a batch.
    """

    coefficients: np.ndarray
    fitter: str
    diagnostics: Dict[str, Any] = field(default_factory=dict)

    @property
    def num_terms(self) -> int:
        return self.coefficients.shape[0]


def fit_coefficients(
    matrix: np.ndarray,
    targets: np.ndarray,
    method: str = "ols",
    **options,
) -> FitResult:
    """Fit chaos coefficients with a registered fitter.

    Parameters
    ----------
    matrix:
        Design matrix of shape ``(num_samples, num_terms)`` (typically
        ``DesignMatrix.matrix``).
    targets:
        Sampled responses, shape ``(num_samples,)`` or
        ``(num_samples, num_rhs)``.
    method:
        Registered fitter name.
    options:
        Forwarded to the fitter.
    """
    fitter = get_fitter(method)
    matrix = np.asarray(matrix, dtype=float)
    targets = np.asarray(targets, dtype=float)
    if matrix.ndim != 2:
        raise RegressionError("design matrix must be 2-D (num_samples, num_terms)")
    single = targets.ndim == 1
    columns = targets[:, None] if single else targets
    if columns.ndim != 2 or columns.shape[0] != matrix.shape[0]:
        raise RegressionError(
            f"targets have shape {targets.shape}, expected "
            f"({matrix.shape[0]},) or ({matrix.shape[0]}, num_rhs)"
        )
    coefficients, diagnostics = fitter(matrix, columns, **options)
    coefficients = np.asarray(coefficients, dtype=float)
    return FitResult(
        coefficients=coefficients[:, 0] if single else coefficients,
        fitter=str(method).strip().lower(),
        diagnostics=dict(diagnostics),
    )


# ---------------------------------------------------------------------------
# Cross-validation scaffolding
# ---------------------------------------------------------------------------
def kfold_indices(num_samples: int, folds: int, seed: int = 0) -> List[np.ndarray]:
    """Deterministic K-fold validation index sets.

    One permutation of ``range(num_samples)`` is drawn from
    ``np.random.default_rng(seed)`` and split into ``folds`` near-equal
    parts, so the folds depend only on ``(num_samples, folds, seed)`` --
    never on worker counts, execution order or global RNG state.
    """
    if folds < 2:
        raise RegressionError(f"cross-validation needs at least 2 folds, got {folds}")
    if folds > num_samples:
        raise RegressionError(
            f"cannot split {num_samples} samples into {folds} folds"
        )
    order = np.random.default_rng(int(seed)).permutation(num_samples)
    return [np.sort(part) for part in np.array_split(order, folds)]


def _cross_validate(matrix, targets, candidates, fit_one, folds, seed):
    """Mean validation MSE of each candidate; returns (best index, scores).

    ``fit_one(train_matrix, train_targets, candidate)`` must return the
    coefficient array of one candidate setting.  Ties break toward the
    earlier candidate so selection is order-stable.
    """
    num_samples = matrix.shape[0]
    fold_sets = kfold_indices(num_samples, folds, seed)
    scores = np.zeros(len(candidates))
    everything = np.arange(num_samples)
    for validation in fold_sets:
        train = np.setdiff1d(everything, validation, assume_unique=True)
        if train.size < 1:
            raise RegressionError("a cross-validation fold has no training samples")
        for k, candidate in enumerate(candidates):
            coefficients = fit_one(matrix[train], targets[train], candidate)
            residual = targets[validation] - matrix[validation] @ coefficients
            scores[k] += np.mean(residual**2)
    scores /= len(fold_sets)
    return int(np.argmin(scores)), scores


def _penalty_weights(num_terms: int, intercept_column: Optional[int]) -> np.ndarray:
    """Per-column penalty multipliers; the intercept column (if any) gets 0."""
    weights = np.ones(num_terms)
    if intercept_column is not None:
        column = int(intercept_column)
        if not (0 <= column < num_terms):
            raise RegressionError(
                f"intercept_column {column} out of range for {num_terms} terms"
            )
        weights[column] = 0.0
    return weights


# ---------------------------------------------------------------------------
# Built-in fitters
# ---------------------------------------------------------------------------
def _fit_ols(matrix, targets, rcond=None):
    """Ordinary least squares (single multi-RHS :func:`numpy.linalg.lstsq`)."""
    coefficients, _, rank, singular = np.linalg.lstsq(matrix, targets, rcond=rcond)
    smallest = singular[-1] if singular.size else 0.0
    diagnostics = {
        "rank": int(rank),
        "condition": float(singular[0] / smallest) if smallest > 0 else float("inf"),
    }
    return coefficients, diagnostics


register_fitter("ols", _fit_ols)
register_fitter("lstsq", _fit_ols)
register_fitter("least-squares", _fit_ols)


def _solve_ridge(matrix, targets, alpha, weights):
    gram = matrix.T @ matrix
    gram = gram + np.diag(float(alpha) * weights)
    return np.linalg.solve(gram, matrix.T @ targets)


@register_fitter("ridge")
def _fit_ridge(
    matrix,
    targets,
    alpha=1e-6,
    intercept_column=0,
    folds=5,
    cv_seed=0,
):
    """Tikhonov regularisation; a sequence ``alpha`` triggers K-fold CV."""
    weights = _penalty_weights(matrix.shape[1], intercept_column)
    diagnostics: Dict[str, Any] = {"intercept_column": intercept_column}
    if isinstance(alpha, (Sequence, np.ndarray)) and not isinstance(alpha, str):
        candidates = [float(a) for a in alpha]
        if not candidates:
            raise RegressionError("ridge needs at least one candidate alpha")
        best, scores = _cross_validate(
            matrix,
            targets,
            candidates,
            lambda a, y, candidate: _solve_ridge(a, y, candidate, weights),
            folds,
            cv_seed,
        )
        alpha = candidates[best]
        diagnostics.update(
            cv_alphas=candidates,
            cv_scores=[float(s) for s in scores],
            folds=int(folds),
            cv_seed=int(cv_seed),
        )
    alpha = float(alpha)
    if alpha < 0:
        raise RegressionError(f"ridge alpha must be non-negative, got {alpha}")
    diagnostics["alpha"] = alpha
    return _solve_ridge(matrix, targets, alpha, weights), diagnostics


@register_fitter("omp")
def _fit_omp(matrix, targets, num_terms=None, tol=1e-12, intercept_column=0):
    """Orthogonal matching pursuit: greedy support growth, exact refit per step.

    Each right-hand side grows its own support (starting from the intercept
    column) until either ``num_terms`` columns are active or the residual
    drops below ``tol`` times the target norm.
    """
    num_samples, num_columns = matrix.shape
    budget = min(num_samples, num_columns) if num_terms is None else int(num_terms)
    if not (1 <= budget <= num_columns):
        raise RegressionError(
            f"omp num_terms must be in [1, {num_columns}], got {budget}"
        )
    column_scale = np.linalg.norm(matrix, axis=0)
    column_scale[column_scale <= 0] = np.inf  # degenerate columns never selected
    coefficients = np.zeros((num_columns, targets.shape[1]))
    supports: List[List[int]] = []
    for j in range(targets.shape[1]):
        y = targets[:, j]
        support: List[int] = []
        if intercept_column is not None:
            support.append(int(intercept_column))
        floor = tol * max(np.linalg.norm(y), 1e-300)
        residual = y
        solution = np.zeros(0)
        while True:
            if support:
                solution, *_ = np.linalg.lstsq(matrix[:, support], y, rcond=None)
                residual = y - matrix[:, support] @ solution
            if len(support) >= budget or np.linalg.norm(residual) <= floor:
                break
            correlation = np.abs(matrix.T @ residual) / column_scale
            correlation[support] = -1.0
            pick = int(np.argmax(correlation))
            if correlation[pick] <= 0:
                break
            support.append(pick)
        coefficients[support, j] = solution
        supports.append(sorted(support))
    sizes = [len(s) for s in supports]
    diagnostics = {
        "max_terms": budget,
        "tol": float(tol),
        "support_sizes": sizes,
        "supports": supports if targets.shape[1] <= 32 else None,
    }
    return coefficients, diagnostics


def _lasso_descent(gram, moment, alpha, weights, max_iter, tol):
    """Cyclic coordinate descent on 1/(2m)||y - Ac||^2 + alpha * sum w_j |c_j|.

    Works entirely on the precomputed (scaled) Gram matrix ``gram = A^T A / m``
    and moment vector ``moment = A^T y / m``.
    """
    num_columns = gram.shape[0]
    coefficients = np.zeros(num_columns)
    gradient = np.zeros(num_columns)  # gram @ coefficients, kept incrementally
    diagonal = np.diag(gram)
    for _ in range(max_iter):
        worst = 0.0
        for j in range(num_columns):
            if diagonal[j] <= 0:
                continue
            rho = moment[j] - gradient[j] + diagonal[j] * coefficients[j]
            threshold = alpha * weights[j]
            if rho > threshold:
                updated = (rho - threshold) / diagonal[j]
            elif rho < -threshold:
                updated = (rho + threshold) / diagonal[j]
            else:
                updated = 0.0
            delta = updated - coefficients[j]
            if delta:
                gradient += gram[:, j] * delta
                coefficients[j] = updated
                worst = max(worst, abs(delta))
        if worst <= tol:
            break
    return coefficients


def _lasso_fit_all(matrix, targets, alpha, weights, max_iter, tol):
    num_samples = matrix.shape[0]
    gram = matrix.T @ matrix / num_samples
    moments = matrix.T @ targets / num_samples
    coefficients = np.empty((matrix.shape[1], targets.shape[1]))
    for j in range(targets.shape[1]):
        coefficients[:, j] = _lasso_descent(
            gram, moments[:, j], alpha, weights, max_iter, tol
        )
    return coefficients


@register_fitter("lasso")
def _fit_lasso(
    matrix,
    targets,
    alpha=None,
    intercept_column=0,
    folds=5,
    cv_seed=0,
    num_alphas=15,
    alpha_floor=1e-3,
    max_iter=1000,
    tol=1e-10,
    debias=False,
):
    """Coordinate-descent Lasso; ``alpha=None`` selects it by K-fold CV.

    The automatic grid spans ``[alpha_floor, 1] * alpha_max`` on a log scale,
    where ``alpha_max`` is the smallest penalty that zeroes every penalised
    coefficient.  ``debias=True`` refits the selected support by ordinary
    least squares (removing the L1 shrinkage bias while keeping the sparsity
    pattern).
    """
    weights = _penalty_weights(matrix.shape[1], intercept_column)
    num_samples = matrix.shape[0]
    diagnostics: Dict[str, Any] = {"intercept_column": intercept_column}

    if alpha is None:
        moments = np.abs(matrix.T @ targets / num_samples)
        alpha_max = float(np.max(moments[weights > 0])) if np.any(weights > 0) else 0.0
        if alpha_max <= 0:
            alpha = 0.0
        else:
            candidates = list(
                alpha_max * np.logspace(0.0, np.log10(alpha_floor), int(num_alphas))
            )
            best, scores = _cross_validate(
                matrix,
                targets,
                candidates,
                lambda a, y, candidate: _lasso_fit_all(
                    a, y, candidate, weights, max_iter, tol
                ),
                folds,
                cv_seed,
            )
            alpha = candidates[best]
            diagnostics.update(
                cv_alphas=[float(a) for a in candidates],
                cv_scores=[float(s) for s in scores],
                folds=int(folds),
                cv_seed=int(cv_seed),
            )
    alpha = float(alpha)
    if alpha < 0:
        raise RegressionError(f"lasso alpha must be non-negative, got {alpha}")
    coefficients = _lasso_fit_all(matrix, targets, alpha, weights, max_iter, tol)

    if debias:
        for j in range(targets.shape[1]):
            support = np.flatnonzero(coefficients[:, j])
            if support.size:
                refit, *_ = np.linalg.lstsq(
                    matrix[:, support], targets[:, j], rcond=None
                )
                coefficients[:, j] = 0.0
                coefficients[support, j] = refit
    diagnostics.update(
        alpha=alpha,
        debias=bool(debias),
        nonzeros=[int(np.count_nonzero(coefficients[:, j])) for j in range(targets.shape[1])],
    )
    return coefficients, diagnostics
