"""Non-intrusive regression polynomial chaos (the ``pce-regression`` engine).

Instead of projecting the stochastic grid equations (the intrusive Galerkin
path of :mod:`repro.opera`), this subsystem *samples* them: evaluate the
orthonormal chaos basis at drawn germ points (:mod:`repro.regression.design`),
run one deterministic solve per sample, and fit the chaos coefficients with a
pluggable linear-regression backend (:mod:`repro.regression.fit` -- OLS,
ridge, orthogonal matching pursuit, cross-validated Lasso).  The fitted
expansion is the same analytic object the intrusive engines produce, so every
downstream statistic (moments, densities, Sobol indices) works unchanged.
"""

from .design import DesignMatrix, build_design_matrix
from .engine import (
    RegressionConfig,
    RegressionResultView,
    run_regression_dc,
    run_regression_transient,
)
from .fit import (
    FitResult,
    fit_coefficients,
    fitter_names,
    get_fitter,
    kfold_indices,
    register_fitter,
    unregister_fitter,
)

__all__ = [
    "DesignMatrix",
    "build_design_matrix",
    "FitResult",
    "fit_coefficients",
    "fitter_names",
    "get_fitter",
    "kfold_indices",
    "register_fitter",
    "unregister_fitter",
    "RegressionConfig",
    "RegressionResultView",
    "run_regression_dc",
    "run_regression_transient",
]
