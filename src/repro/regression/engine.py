"""The ``pce-regression`` engine: non-intrusive regression polynomial chaos.

Where the ``opera`` engine *projects* the stochastic response through the
Galerkin-augmented MNA system, this engine *samples* it: draw germ vectors,
run one fully deterministic solve per sample (embarrassingly parallel), and
fit the chaos coefficients of every node at every time point with a single
multi-right-hand-side least-squares solve against the shared design matrix.
The result is the same analytic object (:class:`StochasticTransientResult` /
:class:`StochasticField`), so moments, densities, worst drops and Sobol
indices work unchanged -- but nothing about the grid equations is ever
touched, which opens the method to any input distribution or response the
intrusive Kronecker machinery cannot assemble.

Determinism
-----------
Sampling reuses the Monte Carlo engine's chunk scaffolding: the chunk layout
depends only on ``(samples, chunk_size)``, each chunk draws from its own
:class:`numpy.random.SeedSequence` child, and chunk results are concatenated
in chunk-index order.  The germ set and the fitted coefficients are therefore
bit-identical for any ``workers`` count, and the cross-validated fitters run
in the driver process on explicitly seeded folds.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..api.engines import _check_mode, _reject_unknown, _resolve_transient, register_engine
from ..api.result import StochasticResultView
from ..chaos.basis import PolynomialChaosBasis
from ..chaos.response import StochasticField, StochasticTransientResult
from ..errors import RegressionError
from ..montecarlo import engine as _mc_engine
from ..montecarlo.engine import _chunk_layout, _chunk_seeds, _run_chunk_jobs
from ..montecarlo.sampler import GermSampler
from ..sim.dc import solve_dc
from ..sim.transient import TransientConfig, run_transient
from ..telemetry import current_telemetry
from ..variation.model import StochasticSystem
from .design import build_design_matrix
from .fit import fit_coefficients, get_fitter

__all__ = [
    "RegressionConfig",
    "run_regression_transient",
    "run_regression_dc",
    "RegressionResultView",
]

#: Fitters that solve the unpenalised least-squares problem and therefore
#: need at least as many samples as basis terms to be determined.
_DENSE_FITTERS = ("ols", "lstsq", "least-squares")


@dataclass(frozen=True)
class RegressionConfig:
    """Settings of a regression-PCE transient analysis.

    Attributes
    ----------
    transient:
        Time axis and integration settings of every per-sample solve (its
        ``solver`` field selects the per-sample linear backend).
    order:
        Total-degree truncation of the chaos basis.
    samples:
        Number of germ samples; ``None`` defaults to twice the basis size
        (the classical 2x oversampling rule).
    seed:
        Root seed of the germ sampling (chunk streams are spawned from it).
    fit:
        Registered fitter name (``ols``, ``ridge``, ``omp``, ``lasso``, ...).
    fit_options:
        Extra keyword options forwarded to the fitter.
    workers:
        Worker processes for the per-sample solves; never affects results.
    chunk_size:
        Samples per chunk (defaults to the Monte Carlo engine's chunk size).
        Changing it changes the germ stream, so keep it fixed when comparing
        runs.
    normalize:
        Equilibrate the design-matrix columns before fitting.
    """

    transient: TransientConfig
    order: int = 2
    samples: Optional[int] = None
    seed: int = 0
    fit: str = "ols"
    fit_options: Dict[str, Any] = field(default_factory=dict)
    workers: int = 1
    chunk_size: Optional[int] = None
    normalize: bool = True

    def __post_init__(self):
        if self.order < 0:
            raise RegressionError("expansion order must be non-negative")
        if self.samples is not None and self.samples < 2:
            raise RegressionError("regression PCE needs at least 2 samples")
        if self.workers < 1:
            raise RegressionError(f"workers must be at least 1, got {self.workers}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise RegressionError(f"chunk_size must be at least 1, got {self.chunk_size}")
        get_fitter(self.fit)  # fail fast with the registry's listing

    def resolved_samples(self, basis: PolynomialChaosBasis) -> int:
        """The effective sample count (2x oversampling when unset)."""
        if self.samples is not None:
            return int(self.samples)
        return max(2 * basis.size, 10)


# ---------------------------------------------------------------------------
# Chunked per-sample solves (workers reuse the Monte Carlo chunk scaffolding)
# ---------------------------------------------------------------------------
def _transient_sample_job(args):
    """Worker entry point: germs and full voltage waveforms of one chunk."""
    transient, chunk_seed, chunk_samples = args
    system = _mc_engine._CHUNK_SYSTEM
    sampler = GermSampler(system, seed=chunk_seed)
    germs = sampler.sample(chunk_samples)
    voltages = np.empty((chunk_samples, transient.num_steps + 1, system.num_nodes))
    for i, xi in enumerate(germs):
        conductance, capacitance = system.realize_matrices(xi)
        rhs = system.realize_rhs(xi)
        result = run_transient(
            conductance, capacitance, rhs, transient, vdd=system.vdd, store=True
        )
        voltages[i] = result.voltages
    return germs, voltages


def _dc_sample_job(args):
    """Worker entry point: germs and DC voltages of one chunk."""
    t, chunk_seed, chunk_samples, solver = args
    system = _mc_engine._CHUNK_SYSTEM
    sampler = GermSampler(system, seed=chunk_seed)
    germs = sampler.sample(chunk_samples)
    voltages = np.empty((chunk_samples, system.num_nodes))
    for i, xi in enumerate(germs):
        conductance, _ = system.realize_matrices(xi)
        voltages[i] = solve_dc(conductance, system.excitation.sample(t, xi), solver=solver)
    return germs, voltages


def _sample_responses(system, jobs, job_fn, workers) -> Tuple[np.ndarray, np.ndarray]:
    """Run chunk jobs and merge (germs, responses) in chunk-index order."""
    outcomes = _run_chunk_jobs(jobs, job_fn, workers, system)
    germs = np.concatenate([chunk_germs for chunk_germs, _ in outcomes], axis=0)
    responses = np.concatenate([chunk_values for _, chunk_values in outcomes], axis=0)
    return germs, responses


# ---------------------------------------------------------------------------
# Fitting
# ---------------------------------------------------------------------------
def _fit_field(basis, germs, flat_responses, fit, fit_options, normalize):
    """Design + single multi-RHS fit; returns (coefficients, diagnostics).

    ``flat_responses`` has shape ``(num_samples, num_rhs)``; the returned
    coefficients have shape ``(basis.size, num_rhs)`` in the basis scale.
    """
    design = build_design_matrix(basis, germs, normalize=normalize)
    if (
        design.num_samples < design.num_terms
        and str(fit).strip().lower() in _DENSE_FITTERS
    ):
        raise RegressionError(
            f"{design.num_samples} samples cannot determine {design.num_terms} "
            f"basis terms with the {fit!r} fitter; increase samples (>= "
            f"{design.num_terms}, ideally {2 * design.num_terms}) or switch to "
            "a sparse fitter (omp, lasso)"
        )
    with current_telemetry().span(
        "regression.fit",
        phase="fit",
        samples=design.num_samples,
        terms=design.num_terms,
    ):
        result = fit_coefficients(design.matrix, flat_responses, method=fit, **fit_options)
    coefficients = design.unscale(result.coefficients)
    diagnostics = {
        "fitter": result.fitter,
        "design": design.diagnostics(),
        "fit": result.diagnostics,
    }
    return coefficients, diagnostics


def run_regression_transient(
    system: StochasticSystem,
    config: RegressionConfig,
    basis: Optional[PolynomialChaosBasis] = None,
) -> StochasticTransientResult:
    """Regression-PCE transient analysis of a stochastic system.

    Draws ``config.samples`` germ vectors (chunked, seed-stable), runs one
    deterministic transient per sample, and fits the chaos coefficients of
    every node at every time point in one multi-RHS solve.  The returned
    result carries a ``regression_info`` attribute with the design/fit
    diagnostics.
    """
    started = time.perf_counter()
    if basis is None:
        basis = PolynomialChaosBasis(
            families=system.variable_families(),
            order=config.order,
            num_vars=system.num_variables,
        )
    samples = config.resolved_samples(basis)
    if samples < 2:
        raise RegressionError("regression PCE needs at least 2 samples")

    sizes = _chunk_layout(samples, config.chunk_size)
    seeds = _chunk_seeds(config.seed, len(sizes))
    jobs = [
        (config.transient, chunk_seed, chunk_samples)
        for chunk_seed, chunk_samples in zip(seeds, sizes)
    ]
    germs, responses = _sample_responses(
        system, jobs, _transient_sample_job, config.workers
    )

    num_times, num_nodes = responses.shape[1], responses.shape[2]
    coefficients, diagnostics = _fit_field(
        basis,
        germs,
        responses.reshape(samples, num_times * num_nodes),
        config.fit,
        config.fit_options,
        config.normalize,
    )
    coefficients = coefficients.reshape(basis.size, num_times, num_nodes)
    elapsed = time.perf_counter() - started
    result = StochasticTransientResult(
        times=config.transient.times(),
        basis=basis,
        vdd=system.vdd,
        coefficients=coefficients.transpose(1, 0, 2),
        node_names=system.node_names,
        wall_time=elapsed,
    )
    result.regression_info = dict(diagnostics, num_samples=samples)
    return result


def run_regression_dc(
    system: StochasticSystem,
    order: int = 2,
    t: float = 0.0,
    samples: Optional[int] = None,
    seed: int = 0,
    fit: str = "ols",
    fit_options: Optional[Dict[str, Any]] = None,
    solver: str = "direct",
    workers: int = 1,
    chunk_size: Optional[int] = None,
    normalize: bool = True,
    basis: Optional[PolynomialChaosBasis] = None,
) -> StochasticField:
    """Regression-PCE DC analysis (steady-state IR drop under variation)."""
    started = time.perf_counter()
    get_fitter(fit)  # fail fast with the registry's listing
    if basis is None:
        basis = PolynomialChaosBasis(
            families=system.variable_families(),
            order=int(order),
            num_vars=system.num_variables,
        )
    if samples is None:
        samples = max(2 * basis.size, 10)
    samples = int(samples)
    if samples < 2:
        raise RegressionError("regression PCE needs at least 2 samples")
    if workers < 1:
        raise RegressionError(f"workers must be at least 1, got {workers}")

    sizes = _chunk_layout(samples, chunk_size)
    seeds = _chunk_seeds(seed, len(sizes))
    jobs = [
        (t, chunk_seed, chunk_samples)
        + (solver,)
        for chunk_seed, chunk_samples in zip(seeds, sizes)
    ]
    germs, voltages = _sample_responses(system, jobs, _dc_sample_job, workers)

    coefficients, diagnostics = _fit_field(
        basis, germs, voltages, fit, dict(fit_options or {}), normalize
    )
    field = StochasticField(
        basis, coefficients, vdd=system.vdd, node_names=system.node_names
    )
    field.wall_time = time.perf_counter() - started
    field.regression_info = dict(diagnostics, num_samples=samples)
    return field


# ---------------------------------------------------------------------------
# Engine registration
# ---------------------------------------------------------------------------
class RegressionResultView(StochasticResultView):
    """Chaos results fitted by sampling (the ``pce-regression`` engine)."""

    def to_dict(self) -> Dict[str, Any]:
        summary = super().to_dict()
        info = getattr(self.raw, "regression_info", None) or {}
        if "num_samples" in info:
            summary["num_samples"] = int(info["num_samples"])
        if "fitter" in info:
            summary["fitter"] = info["fitter"]
        design = info.get("design")
        if design:
            summary["design_condition"] = design["condition"]
            summary["oversampling"] = design["oversampling"]
        return summary


@register_engine("pce-regression")
def _run_pce_regression_engine(session, mode: Optional[str] = None, **options):
    """Non-intrusive regression PCE (sampled solves + least-squares fit).

    Options: ``order`` (``degree`` is an alias), ``samples``, ``seed``,
    ``fit`` / ``fit_options``, ``solver`` (per-sample linear backend),
    ``workers`` / ``chunk_size`` and ``normalize``; the transient mode also
    accepts the shared time-axis overrides (``t_stop``, ``dt``, ``scheme``,
    ...), the DC mode accepts ``t``.
    """
    mode = mode or "transient"
    _check_mode("pce-regression", mode, ("transient", "dc"))
    degree = options.pop("degree", None)
    order = options.pop("order", None)
    if order is None:
        order = degree if degree is not None else 2
    order = int(order)
    samples = options.pop("samples", options.pop("num_samples", None))
    if samples is not None:
        samples = int(samples)
    seed = int(options.pop("seed", 0))
    fit = str(options.pop("fit", "ols"))
    fit_options = dict(options.pop("fit_options", None) or {})
    solver = options.pop("solver", None)
    workers = int(options.pop("workers", 1))
    chunk_size = options.pop("chunk_size", None)
    if chunk_size is not None:
        chunk_size = int(chunk_size)
    normalize = bool(options.pop("normalize", True))
    system = session.system
    basis = session.basis(order)

    if mode == "dc":
        t = float(options.pop("t", 0.0))
        _reject_unknown(options, "pce-regression", mode)
        field = run_regression_dc(
            system,
            order=order,
            t=t,
            samples=samples,
            seed=seed,
            fit=fit,
            fit_options=fit_options,
            solver=solver or "direct",
            workers=workers,
            chunk_size=chunk_size,
            normalize=normalize,
            basis=basis,
        )
        return RegressionResultView("pce-regression", "dc", field, system.vdd)

    transient = _resolve_transient(session, options)
    if solver is not None and solver != transient.solver:
        transient = dataclasses.replace(transient, solver=solver)
    config = RegressionConfig(
        transient=transient,
        order=order,
        samples=samples,
        seed=seed,
        fit=fit,
        fit_options=fit_options,
        workers=workers,
        chunk_size=chunk_size,
        normalize=normalize,
    )
    _reject_unknown(options, "pce-regression", mode)
    result = run_regression_transient(system, config, basis=basis)
    view = RegressionResultView("pce-regression", "transient", result, system.vdd)
    view.transient = transient
    return view
