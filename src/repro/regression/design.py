"""Design matrices for non-intrusive polynomial chaos regression.

The regression path of the library replaces the Galerkin projection by a
least-squares problem: evaluate every (orthonormal) basis function of a
:class:`~repro.chaos.basis.PolynomialChaosBasis` at sampled germ points and
fit the chaos coefficients to the sampled responses.  The matrix of basis
values is the *design matrix*

``Phi[s, i] = psi_i(xi_s)``,   shape ``(num_samples, basis.size)``.

Because the basis is orthonormal under the germ density, ``Phi^T Phi / m``
converges to the identity as the sample count grows; the root-mean-square
norm of each column is therefore a direct diagnostic of how well the sample
set resolves that basis function, and dividing the columns by it equilibrates
the least-squares problem without changing its solution (the recorded norms
undo the scaling on the fitted coefficients).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..chaos.basis import PolynomialChaosBasis
from ..errors import RegressionError

__all__ = ["DesignMatrix", "build_design_matrix"]


@dataclass(frozen=True)
class DesignMatrix:
    """Basis values at sampled germ points, ready for least-squares fitting.

    Attributes
    ----------
    matrix:
        The (possibly column-normalised) basis values, shape
        ``(num_samples, num_terms)``.
    basis:
        The chaos basis the columns were evaluated from.
    column_indices:
        Position of each column in the basis ordering (identity unless a
        sub-set of terms was requested).
    column_norms:
        Root-mean-square norm of each *raw* column.  When ``normalized`` is
        true the stored columns were divided by these, and
        :meth:`unscale` maps fitted coefficients back to the basis scale.
    normalized:
        Whether the stored columns carry unit RMS norm.
    """

    matrix: np.ndarray
    basis: PolynomialChaosBasis
    column_indices: Tuple[int, ...]
    column_norms: np.ndarray
    normalized: bool
    _condition: Dict[str, float] = field(default_factory=dict, repr=False, compare=False)

    # ------------------------------------------------------------------ sizes
    @property
    def num_samples(self) -> int:
        return self.matrix.shape[0]

    @property
    def num_terms(self) -> int:
        return self.matrix.shape[1]

    @property
    def oversampling(self) -> float:
        """Rows per column; classical regression PCE aims for ~2 or more."""
        return self.num_samples / self.num_terms

    # ------------------------------------------------------------ diagnostics
    def condition_number(self) -> float:
        """2-norm condition number of the stored matrix (cached)."""
        if "value" not in self._condition:
            singular = np.linalg.svd(self.matrix, compute_uv=False)
            smallest = singular[-1] if singular.size else 0.0
            self._condition["value"] = (
                float(singular[0] / smallest) if smallest > 0 else float("inf")
            )
        return self._condition["value"]

    def diagnostics(self) -> Dict[str, float]:
        """Conditioning summary of the sampled least-squares problem."""
        return {
            "num_samples": self.num_samples,
            "num_terms": self.num_terms,
            "oversampling": float(self.oversampling),
            "condition": self.condition_number(),
            "normalized": self.normalized,
            "min_column_norm": float(np.min(self.column_norms)),
            "max_column_norm": float(np.max(self.column_norms)),
        }

    # ------------------------------------------------------------ coefficients
    def unscale(self, coefficients: np.ndarray) -> np.ndarray:
        """Map coefficients fitted against ``matrix`` back to the basis scale.

        Accepts shape ``(num_terms,)`` or ``(num_terms, num_rhs)``; a no-op
        (copy) when the columns were not normalised.
        """
        coefficients = np.asarray(coefficients, dtype=float)
        if coefficients.shape[0] != self.num_terms:
            raise RegressionError(
                f"coefficients have {coefficients.shape[0]} rows, "
                f"expected {self.num_terms}"
            )
        if not self.normalized:
            return coefficients.copy()
        norms = self.column_norms
        return coefficients / (norms[:, None] if coefficients.ndim == 2 else norms)

    def expand(self, coefficients: np.ndarray) -> np.ndarray:
        """Scatter (basis-scale) coefficients into the full basis ordering.

        Columns not part of this design (when a term sub-set was requested)
        become zero rows; the result always has ``basis.size`` rows.
        """
        coefficients = np.asarray(coefficients, dtype=float)
        if coefficients.shape[0] != self.num_terms:
            raise RegressionError(
                f"coefficients have {coefficients.shape[0]} rows, "
                f"expected {self.num_terms}"
            )
        shape = (self.basis.size,) + coefficients.shape[1:]
        full = np.zeros(shape, dtype=float)
        full[list(self.column_indices)] = coefficients
        return full


def build_design_matrix(
    basis: PolynomialChaosBasis,
    points: np.ndarray,
    indices: Optional[Sequence[int]] = None,
    normalize: bool = True,
) -> DesignMatrix:
    """Evaluate a chaos basis over germ samples as a regression design matrix.

    Parameters
    ----------
    basis:
        Any :class:`~repro.chaos.basis.PolynomialChaosBasis` (Hermite or the
        Askey Legendre/Laguerre/Jacobi families, mixed per dimension).
    points:
        Germ samples of shape ``(num_samples, basis.num_vars)``.
    indices:
        Optional sub-set of basis-term positions to retain as columns (any
        sparse multi-index selection); defaults to every term.
    normalize:
        Divide each column by its RMS norm (recorded, so fitted coefficients
        can be mapped back with :meth:`DesignMatrix.unscale`).  Equilibrating
        the columns keeps the fit well-scaled for penalised fitters whose
        shrinkage is otherwise column-scale dependent.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2:
        raise RegressionError(
            f"germ points must be a 2-D array (num_samples, num_vars); "
            f"got {points.ndim} dimension(s)"
        )
    if points.shape[1] != basis.num_vars:
        raise RegressionError(
            f"germ points have {points.shape[1]} dimensions, "
            f"basis expects {basis.num_vars}"
        )
    if points.shape[0] < 1:
        raise RegressionError("at least one germ sample is required")

    if indices is None:
        column_indices = tuple(range(basis.size))
        matrix = np.array(basis.evaluate(points), dtype=float)
    else:
        column_indices = tuple(int(i) for i in indices)
        if not column_indices:
            raise RegressionError("the design matrix needs at least one column")
        for position in column_indices:
            if not (0 <= position < basis.size):
                raise RegressionError(
                    f"basis-term index {position} out of range for a "
                    f"size-{basis.size} basis"
                )
        if len(set(column_indices)) != len(column_indices):
            raise RegressionError("basis-term indices must be unique")
        matrix = np.array(basis.evaluate(points)[:, list(column_indices)], dtype=float)

    norms = np.sqrt(np.mean(matrix**2, axis=0))
    if normalize:
        degenerate = np.flatnonzero(norms <= 0)
        if degenerate.size:
            raise RegressionError(
                "design-matrix column(s) "
                f"{', '.join(str(column_indices[i]) for i in degenerate)} vanish "
                "on the sampled germ points; draw more (or less degenerate) samples"
            )
        matrix = matrix / norms
    return DesignMatrix(
        matrix=matrix,
        basis=basis,
        column_indices=column_indices,
        column_norms=norms,
        normalized=bool(normalize),
    )
