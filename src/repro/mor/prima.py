"""PRIMA-style passive model order reduction (implementation-note extension).

The paper's implementation discussion (Section 5.2) points out that the cost
of solving the augmented OPERA system can be reduced further with model order
reduction, since the designer usually only cares about the voltages (and
their statistics) at a modest number of observation nodes.  This module
provides a block-Arnoldi / PRIMA-style congruence-transform reduction:

1. choose input/observation ports (columns of ``B``);
2. build an orthonormal basis ``V`` of the block Krylov subspace
   ``span{A^k R, k = 0..q-1}`` with ``A = G^{-1} C`` and ``R = G^{-1} B``;
3. project congruently: ``G_r = V^T G V``, ``C_r = V^T C V``, ``B_r = V^T B``.

Congruence transformation preserves passivity for RC grids (symmetric
positive semi-definite ``G`` and ``C``), and the reduced model matches the
first ``q`` block moments of the original transfer function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
import scipy.sparse as sp

from ..errors import SolverError
from ..sim.linear import make_solver
from ..sim.transient import TransientConfig, run_transient

__all__ = ["ReducedModel", "prima_reduce"]


@dataclass
class ReducedModel:
    """A reduced-order model ``(G_r, C_r, B_r)`` with its projection basis ``V``."""

    conductance: np.ndarray
    capacitance: np.ndarray
    input_map: np.ndarray
    projection: np.ndarray

    @property
    def order(self) -> int:
        """Dimension of the reduced state space."""
        return self.conductance.shape[0]

    @property
    def num_ports(self) -> int:
        return self.input_map.shape[1]

    def expand(self, reduced_states: np.ndarray) -> np.ndarray:
        """Lift reduced states back to full node voltages (``V @ x_r``)."""
        reduced_states = np.asarray(reduced_states, dtype=float)
        return reduced_states @ self.projection.T

    def transient(
        self,
        port_currents: Callable[[float], np.ndarray],
        config: TransientConfig,
        vdd: float = 1.0,
    ):
        """Run a transient on the reduced model.

        ``port_currents(t)`` returns the current injected at each port; the
        reduced right-hand side is ``B_r @ port_currents(t)``.
        """
        conductance = sp.csr_matrix(self.conductance)
        capacitance = sp.csr_matrix(self.capacitance)

        def rhs(t: float) -> np.ndarray:
            return self.input_map @ np.asarray(port_currents(t), dtype=float)

        return run_transient(conductance, capacitance, rhs, config, vdd=vdd)


def prima_reduce(
    conductance: sp.spmatrix,
    capacitance: sp.spmatrix,
    ports: np.ndarray,
    num_moments: int = 2,
    solver: str = "direct",
    deflation_tolerance: float = 1e-12,
) -> ReducedModel:
    """Reduce an RC system with a block-Arnoldi (PRIMA) congruence projection.

    Parameters
    ----------
    conductance, capacitance:
        The full sparse ``G`` and ``C`` matrices (``n x n``).
    ports:
        Either an ``(n, m)`` dense input matrix ``B`` or a 1-D array of node
        indices; in the latter case ``B`` selects unit injections at those
        nodes.
    num_moments:
        Number of block moments to match (Krylov depth ``q``); the reduced
        order is at most ``q * m``.
    solver:
        Linear solver used for the repeated ``G``-solves.
    deflation_tolerance:
        Columns whose *relative* norm falls below this value after
        orthogonalisation are dropped (deflation of converged directions).
        Every raw Krylov column is normalised before Gram-Schmidt, so the
        test is scale-invariant: stiff systems whose higher moment blocks
        carry tiny absolute magnitudes (``G``-dominated grids with
        femtosecond time constants) still contribute their directions.

    Notes
    -----
    When the requested Krylov space can already span the full state space
    (``num_moments * m >= n``) the reduction falls back to the exact
    identity projection: the "reduced" model is the original system and
    ``expand`` is a no-op reshape.
    """
    conductance = sp.csr_matrix(conductance)
    capacitance = sp.csr_matrix(capacitance)
    n = conductance.shape[0]
    if conductance.shape != capacitance.shape:
        raise SolverError("G and C must have identical shapes")
    if num_moments < 1:
        raise SolverError("num_moments must be at least 1")

    ports = np.asarray(ports)
    if ports.ndim == 1:
        input_matrix = np.zeros((n, ports.size))
        for column, node in enumerate(ports.astype(int)):
            if not (0 <= node < n):
                raise SolverError(f"port node {node} out of range")
            input_matrix[node, column] = 1.0
    elif ports.ndim == 2 and ports.shape[0] == n:
        input_matrix = ports.astype(float)
    else:
        raise SolverError("ports must be node indices or an (n, m) input matrix")

    if num_moments * input_matrix.shape[1] >= n:
        # The block Krylov space can span the whole state space: reducing
        # would only add projection noise, so fall back to the exact model.
        projection = np.eye(n)
        return ReducedModel(
            conductance=np.asarray(conductance.todense(), dtype=float),
            capacitance=np.asarray(capacitance.todense(), dtype=float),
            input_map=input_matrix.copy(),
            projection=projection,
        )

    g_solver = make_solver(conductance, method=solver)

    def orthonormalize(block: np.ndarray, basis_columns: list) -> np.ndarray:
        """Modified Gram-Schmidt of ``block`` against existing columns.

        Columns are normalised *before* orthogonalisation so the deflation
        test compares the orthogonal residual against the column's own
        scale rather than an absolute threshold.
        """
        kept = []
        for column in block.T:
            norm = np.linalg.norm(column)
            if norm == 0.0:
                continue
            vector = column / norm
            for _ in range(2):  # MGS with one re-orthogonalisation pass
                for existing in basis_columns:
                    vector -= existing * (existing @ vector)
                for existing in kept:
                    vector -= existing * (existing @ vector)
            norm = np.linalg.norm(vector)
            if norm > deflation_tolerance:
                kept.append(vector / norm)
        return np.array(kept).T if kept else np.empty((block.shape[0], 0))

    basis_columns: list = []
    block = g_solver.solve_many(input_matrix)
    block = orthonormalize(np.atleast_2d(block.T).T, basis_columns)
    for column in block.T:
        basis_columns.append(column)

    previous_block = block
    for _ in range(1, num_moments):
        if previous_block.shape[1] == 0:
            break
        raw = g_solver.solve_many(capacitance @ previous_block)
        new_block = orthonormalize(raw, basis_columns)
        for column in new_block.T:
            basis_columns.append(column)
        previous_block = new_block

    if not basis_columns:
        raise SolverError("PRIMA produced an empty projection basis")
    projection = np.column_stack(basis_columns)

    reduced_conductance = projection.T @ (conductance @ projection)
    reduced_capacitance = projection.T @ (capacitance @ projection)
    reduced_inputs = projection.T @ input_matrix
    return ReducedModel(
        conductance=reduced_conductance,
        capacitance=reduced_capacitance,
        input_map=reduced_inputs,
        projection=projection,
    )
