"""Per-block passive macromodels for the partitioned stochastic engine.

The ``mor`` engine tiles the grid exactly like the ``hierarchical`` engine
(:func:`repro.partition.engine.system_partition`) but, instead of condensing
every atom exactly per step, reduces each atom's *nominal* interior system
``(G0_II, C0_II)`` once to a small passive macromodel with
:func:`repro.mor.prima.prima_reduce`.  The reduction ports are

* the atom's interface-adjacent interior nodes (unit injections at every
  interior node structurally coupled to the partition boundary by *any*
  coefficient matrix), so the projected block reproduces the port response
  the Schur reduction would use exactly to first order;
* the spatial directions of the block's excitation waveforms (normalised
  rows of the active chaos-coefficient tables restricted to the interior) --
  corner sweeps scale these waveforms, so the *directions* are
  corner-invariant and one basis serves every corner;
* any requested observation nodes that fall inside the atom.

The stored projection basis ``V`` depends only on the nominal block
matrices and the port structure, never on the corner's sensitivity
magnitudes; :func:`macromodel_key` fingerprints exactly those inputs so an
:class:`~repro.api.Analysis` session (and the sweep runner's shared corner
sessions) can reuse one reduction across corners, schemes and repeated
runs.  :meth:`BlockMacromodel.covers` is the guard on every cache hit: a
cached basis is only reused when it still contains the current excitation
directions.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from ..sim.linear import matrix_fingerprint
from ..telemetry import current_telemetry
from ..variation.model import StochasticSystem
from .prima import prima_reduce

__all__ = [
    "BlockMacromodel",
    "block_coupling",
    "excitation_directions",
    "macromodel_key",
    "build_block_macromodel",
]

#: Relative residual above which a cached basis no longer covers an
#: excitation direction (see :meth:`BlockMacromodel.covers`).
COVERAGE_TOLERANCE = 1e-8


@dataclass
class BlockMacromodel:
    """One atom's reduced model: projection basis plus projected nominals.

    ``projection`` is the orthonormal PRIMA basis ``V`` (``|I_k| x r_k``);
    ``conductance`` / ``capacitance`` are the congruence projections
    ``V^T G0_II V`` / ``V^T C0_II V`` of the *nominal* block matrices,
    reused as the mean-coefficient blocks of the reduced augmented system.
    ``input_span`` is an orthonormal basis of the PRIMA *input* columns
    (port injections plus excitation directions) -- the reuse guard: any
    excitation inside that span generates a Krylov space the stored ``V``
    already matched moment-by-moment.
    """

    atom: int
    interior: np.ndarray
    projection: np.ndarray
    conductance: np.ndarray
    capacitance: np.ndarray
    input_span: np.ndarray
    reduction_order: int
    num_ports: int
    key: Tuple = field(default=(), repr=False)

    @property
    def order(self) -> int:
        """Dimension of the reduced block state."""
        return self.projection.shape[1]

    def covers(self, directions: Sequence[np.ndarray], tolerance: float = COVERAGE_TOLERANCE) -> bool:
        """Whether the build-time input span contains the given directions.

        The reuse guard of the session macromodel cache: corners scale the
        excitation waveforms, so their normalised spatial directions are
        usually unchanged and the check passes; a corner that genuinely
        excites new directions fails it and triggers a rebuild.  Checked
        against ``input_span`` (not ``projection``): PRIMA's Krylov basis
        spans the *moment responses* of the inputs, so a new excitation is
        reproduced exactly when it lies inside the original input span.
        """
        span = self.input_span
        for direction in directions:
            residual = direction - span @ (span.T @ direction)
            if np.linalg.norm(residual) > tolerance:
                return False
        return True


def block_coupling(
    system: StochasticSystem, interior: np.ndarray, boundary: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Structural interior/boundary coupling of one atom, over *all* matrices.

    Returns ``(rows, cols)``: the interior-local indices adjacent to the
    boundary (the atom's reduction ports) and the boundary-local indices the
    atom couples to (the columns of its reduced coupling blocks).  The union
    runs over the nominal matrices and every sensitivity, mirroring
    :func:`repro.partition.engine.system_partition`'s union structure.
    """
    matrices = [system.g_nominal, system.c_nominal]
    matrices += list(system.g_sensitivities.values())
    matrices += list(system.c_sensitivities.values())
    accumulated = None
    for matrix in matrices:
        block = sp.csr_matrix(abs(sp.csr_matrix(matrix))[interior][:, boundary])
        accumulated = block if accumulated is None else accumulated + block
    coo = accumulated.tocoo()
    return np.unique(coo.row), np.unique(coo.col)


def excitation_directions(
    waveforms: Iterable[Tuple[int, np.ndarray]],
    interior: np.ndarray,
    *,
    duplicate_tolerance: float = 1e-10,
) -> List[np.ndarray]:
    """Unit spatial directions of the excitation restricted to one interior.

    Every row of every active chaos-coefficient waveform table is restricted
    to the interior and normalised; (near-)duplicate directions -- ramps and
    plateaus repeat one spatial pattern across many steps -- are dropped so
    the PRIMA input block stays small.
    """
    kept: List[np.ndarray] = []
    for _, table in waveforms:
        local = table[:, interior]
        for row in local:
            norm = np.linalg.norm(row)
            if norm == 0.0:
                continue
            direction = row / norm
            if any(abs(direction @ other) > 1.0 - duplicate_tolerance for other in kept):
                continue
            kept.append(direction)
    return kept


def _ports_digest(adjacency: np.ndarray, observed: np.ndarray) -> str:
    payload = adjacency.astype(np.int64).tobytes() + b"|" + observed.astype(np.int64).tobytes()
    return hashlib.sha1(payload).hexdigest()


def macromodel_key(
    g_interior: sp.spmatrix,
    c_interior: sp.spmatrix,
    adjacency: np.ndarray,
    observed: np.ndarray,
    reduction_order: int,
) -> Tuple:
    """The session-cache key of one block's macromodel.

    Fingerprints exactly the inputs the projection basis depends on: the
    nominal block matrices (content fingerprint), the structural port set
    and the reduction order.  Deliberately *excludes* the excitation
    content -- corners rescale waveforms without changing their directions,
    and :meth:`BlockMacromodel.covers` guards the exceptional case.
    """
    return (
        matrix_fingerprint(sp.csr_matrix(g_interior)),
        matrix_fingerprint(sp.csr_matrix(c_interior)),
        _ports_digest(np.asarray(adjacency), np.asarray(observed)),
        int(reduction_order),
    )


def build_block_macromodel(
    atom: int,
    interior: np.ndarray,
    g_interior: sp.spmatrix,
    c_interior: sp.spmatrix,
    adjacency: np.ndarray,
    observed: np.ndarray,
    directions: Sequence[np.ndarray],
    reduction_order: int,
    key: Tuple = (),
) -> BlockMacromodel:
    """Reduce one atom's nominal interior system to a passive macromodel.

    The PRIMA input matrix stacks unit injections at the structural ports
    (interface-adjacent interior nodes plus observed interior nodes) with
    the excitation's unit spatial directions; the reduction runs in a
    ``mor.reduce`` telemetry span (phase ``reduce``).
    """
    size = int(interior.size)
    port_nodes = np.union1d(np.asarray(adjacency, dtype=int), np.asarray(observed, dtype=int))
    columns = np.zeros((size, port_nodes.size + len(directions)))
    columns[port_nodes, np.arange(port_nodes.size)] = 1.0
    for offset, direction in enumerate(directions):
        columns[:, port_nodes.size + offset] = direction
    with current_telemetry().span(
        "mor.reduce",
        phase="reduce",
        atom=int(atom),
        ports=int(columns.shape[1]),
        order=int(reduction_order),
    ):
        model = prima_reduce(
            sp.csr_matrix(g_interior),
            sp.csr_matrix(c_interior),
            columns,
            num_moments=int(reduction_order),
        )
        # Orthonormal basis of the exact input column space (SVD rather than
        # unpivoted QR, whose diagonal-of-R rank test is unreliable).
        left, singular, _ = np.linalg.svd(columns, full_matrices=False)
        kept = singular > 1e-12 * (singular[0] if singular.size else 1.0)
    return BlockMacromodel(
        atom=int(atom),
        interior=np.asarray(interior, dtype=int),
        projection=model.projection,
        conductance=model.conductance,
        capacitance=model.capacitance,
        input_span=left[:, kept],
        reduction_order=int(reduction_order),
        num_ports=int(columns.shape[1]),
        key=tuple(key),
    )
