"""The reduced augmented system: block operators and their dense solver.

Projecting each atom's interior through its macromodel basis ``V_k`` turns
the augmented (Galerkin) system ``sum_m T_m (x) A_m`` into a small
block-structured system that is never materialised globally:

* per-atom diagonal blocks ``D_k = sum_m T_m (x) (V_k^T A_m[I,I] V_k)``
  (dense, chaos-major within the atom),
* per-atom interface couplings ``E_k = sum_m T_m (x) (V_k^T A_m[I,B_k])``
  and ``F_k = sum_m T_m (x) (A_m[B_k,I] V_k)`` against the atom's *local*
  boundary columns only,
* the exact (unreduced) interface block ``sum_m T_m (x) A_m[B,B]``.

:class:`ReducedBlockOperator` carries those pieces with the scalar-scaling
/ addition / ``matvec`` surface :func:`repro.stepping.schemes.step_forms`
needs for its matrix-free path, so any registered stepping scheme composes
the reduced LHS and RHS forms without special-casing.
:class:`ReducedBlockSolver` then factors a composed LHS by dense block
elimination -- the macromodel counterpart of
:class:`repro.partition.schur.SchurComplement`: eliminate every reduced
atom, factor the dense interface Schur complement, back-substitute.

The reduced state vector is atom-major; within an atom (and within the
boundary tail) entries are chaos-major: ``z_k[p * r_k + i]`` is chaos block
``p`` of reduced coordinate ``i`` -- exactly the layout ``kron(T_m, .)``
produces, so no permutations appear anywhere.
"""

from __future__ import annotations

import time
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp
from scipy.linalg import lu_factor, lu_solve

from ..errors import SolverError
from ..linalg.operator import kron_sum_csr
from ..telemetry import current_telemetry
from .macromodel import BlockMacromodel

__all__ = [
    "ReducedBlockOperator",
    "ReducedBlockSolver",
    "ReducedRhsSeries",
    "build_reduced_operators",
    "reduce_rhs_series",
]


class ReducedBlockOperator:
    """``sum_m T_m (x) A_m`` after per-atom congruence projection.

    Supports exactly the operator algebra the stepping core's matrix-free
    path uses -- scalar scaling, addition of same-layout operators, and
    ``matvec(x, out=...)`` -- so scheme forms (``a G + b C/h`` and the RHS
    products) compose without materialising anything.
    """

    __slots__ = ("diag", "couple_ib", "couple_bi", "interface", "col_index", "offsets", "boundary_offset", "size")

    def __init__(
        self,
        diag: Sequence[np.ndarray],
        couple_ib: Sequence[np.ndarray],
        couple_bi: Sequence[np.ndarray],
        interface: sp.spmatrix,
        col_index: Sequence[np.ndarray],
        offsets: Sequence[int],
        boundary_offset: int,
    ):
        self.diag = list(diag)
        self.couple_ib = list(couple_ib)
        self.couple_bi = list(couple_bi)
        self.interface = sp.csr_matrix(interface)
        self.col_index = list(col_index)
        self.offsets = list(offsets)
        self.boundary_offset = int(boundary_offset)
        self.size = self.boundary_offset + self.interface.shape[0]

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.size, self.size)

    # ------------------------------------------------------- operator algebra
    def _scaled(self, factor: float) -> "ReducedBlockOperator":
        factor = float(factor)
        return ReducedBlockOperator(
            [factor * block for block in self.diag],
            [factor * block for block in self.couple_ib],
            [factor * block for block in self.couple_bi],
            self.interface * factor,
            self.col_index,
            self.offsets,
            self.boundary_offset,
        )

    def __mul__(self, factor):
        if not np.isscalar(factor):
            return NotImplemented
        return self._scaled(factor)

    __rmul__ = __mul__

    def __truediv__(self, factor):
        if not np.isscalar(factor):
            return NotImplemented
        return self._scaled(1.0 / float(factor))

    def __add__(self, other):
        if not isinstance(other, ReducedBlockOperator):
            return NotImplemented
        if self.offsets != other.offsets or self.boundary_offset != other.boundary_offset:
            raise SolverError("cannot add reduced operators with different block layouts")
        return ReducedBlockOperator(
            [a + b for a, b in zip(self.diag, other.diag)],
            [a + b for a, b in zip(self.couple_ib, other.couple_ib)],
            [a + b for a, b in zip(self.couple_bi, other.couple_bi)],
            self.interface + other.interface,
            self.col_index,
            self.offsets,
            self.boundary_offset,
        )

    # ---------------------------------------------------------------- products
    def matvec(self, x: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.shape != (self.size,):
            raise SolverError(f"operand has shape {x.shape}, expected ({self.size},)")
        if out is None:
            out = np.empty(self.size)
        tail = self.interface @ x[self.boundary_offset :]
        for block, coupling, reverse, cols, offset in zip(
            self.diag, self.couple_ib, self.couple_bi, self.col_index, self.offsets
        ):
            segment = x[offset : offset + block.shape[0]]
            out[offset : offset + block.shape[0]] = block @ segment
            if cols.size:
                out[offset : offset + block.shape[0]] += coupling @ x[self.boundary_offset + cols]
                tail[cols] += reverse @ segment
        out[self.boundary_offset :] = tail
        return out

    def __matmul__(self, x):
        return self.matvec(x)


class ReducedBlockSolver:
    """Dense block elimination of a :class:`ReducedBlockOperator` LHS.

    Mirrors :class:`repro.partition.schur.SchurComplement` on the reduced
    system: LU-factor every atom's dense diagonal block, form the dense
    interface Schur complement ``S = S0 - sum_k F_k D_k^{-1} E_k``, and
    solve by eliminate / interface solve / back-substitute.  Direct (no
    warm start), so the shared step loop treats it like any factorisation.
    """

    def __init__(self, operator: ReducedBlockOperator):
        started = time.perf_counter()
        with current_telemetry().span(
            "solver.factor", phase="factor", solver="mor-block", blocks=len(operator.diag)
        ):
            self.operator = operator
            self._block_lu = [lu_factor(block) for block in operator.diag]
            self._eliminated = [
                lu_solve(lu, coupling) if coupling.shape[1] else coupling
                for lu, coupling in zip(self._block_lu, operator.couple_ib)
            ]
            schur = np.asarray(operator.interface.todense())
            for reverse, eliminated, cols in zip(
                operator.couple_bi, self._eliminated, operator.col_index
            ):
                if cols.size:
                    schur[np.ix_(cols, cols)] -= reverse @ eliminated
            self._interface_lu = lu_factor(schur)
        self.factor_time = time.perf_counter() - started
        self.shape = operator.shape

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        operator = self.operator
        rhs = np.asarray(rhs, dtype=float)
        if rhs.shape != (operator.size,):
            raise SolverError(f"right-hand side has shape {rhs.shape}, expected ({operator.size},)")
        reduced_tail = rhs[operator.boundary_offset :].copy()
        eliminated_states: List[np.ndarray] = []
        for lu, reverse, cols, offset, block in zip(
            self._block_lu,
            operator.couple_bi,
            operator.col_index,
            operator.offsets,
            operator.diag,
        ):
            state = lu_solve(lu, rhs[offset : offset + block.shape[0]])
            eliminated_states.append(state)
            if cols.size:
                reduced_tail[cols] -= reverse @ state
        tail = lu_solve(self._interface_lu, reduced_tail)
        out = np.empty(operator.size)
        for state, eliminated, cols, offset in zip(
            eliminated_states, self._eliminated, operator.col_index, operator.offsets
        ):
            if cols.size:
                state = state - eliminated @ tail[cols]
            out[offset : offset + state.size] = state
        out[operator.boundary_offset :] = tail
        return out


class ReducedRhsSeries:
    """Precomputed reduced excitation table with the step loop's contract."""

    def __init__(self, times: np.ndarray, table: np.ndarray):
        self.times = np.asarray(times, dtype=float)
        self._table = np.asarray(table, dtype=float)
        if self._table.shape[0] != self.times.size:
            raise SolverError(
                f"reduced RHS table has {self._table.shape[0]} rows for "
                f"{self.times.size} time points"
            )

    @property
    def size(self) -> int:
        return self._table.shape[1]

    def fill(self, step: int, out: np.ndarray) -> np.ndarray:
        if out.shape != (self._table.shape[1],):
            raise SolverError(
                f"out buffer has shape {out.shape}, expected ({self._table.shape[1]},)"
            )
        out[:] = self._table[step]
        return out


def _layout(models: Sequence[BlockMacromodel], basis_size: int, boundary_size: int):
    """Offsets of the atom-major reduced state vector."""
    offsets: List[int] = []
    offset = 0
    for model in models:
        offsets.append(offset)
        offset += basis_size * model.order
    return offsets, offset, offset + basis_size * boundary_size


def _kron_accumulate(out: np.ndarray, tensor: sp.spmatrix, block: np.ndarray) -> None:
    """``out += kron(T, block)`` exploiting the tensor's sparsity."""
    rows, cols = block.shape
    coo = tensor.tocoo()
    for i, j, value in zip(coo.row, coo.col, coo.data):
        out[i * rows : (i + 1) * rows, j * cols : (j + 1) * cols] += value * block
    return None


def build_reduced_operators(
    models: Sequence[BlockMacromodel],
    local_columns: Sequence[np.ndarray],
    boundary: np.ndarray,
    basis_size: int,
    conductance_coefficients: Mapping[int, sp.spmatrix],
    capacitance_coefficients: Mapping[int, sp.spmatrix],
    tensors: Mapping[int, sp.spmatrix],
) -> Tuple[ReducedBlockOperator, ReducedBlockOperator]:
    """Project both augmented matrices through the per-atom macromodels.

    Returns the reduced ``(G~, C~)`` operator pair sharing one layout.  The
    mean-coefficient diagonal projections ``V^T A_0 V`` are taken from the
    macromodels (computed once by the reduction and valid by cache-key
    equality of the nominal blocks); everything else is projected here.
    """
    boundary = np.asarray(boundary, dtype=int)
    offsets, boundary_offset, _ = _layout(models, basis_size, boundary.size)
    pieces: Dict[str, List] = {"g_diag": [], "g_ib": [], "g_bi": [], "c_diag": [], "c_ib": [], "c_bi": []}
    col_index: List[np.ndarray] = []
    for model, cols in zip(models, local_columns):
        cols = np.asarray(cols, dtype=int)
        interior = model.interior
        basis = model.projection
        rank = model.order
        width = cols.size
        expanded = np.concatenate(
            [page * boundary.size + cols for page in range(basis_size)]
        ) if width else np.empty(0, dtype=int)
        col_index.append(expanded.astype(int))
        boundary_cols = boundary[cols]
        for prefix, coefficients, nominal in (
            ("g", conductance_coefficients, model.conductance),
            ("c", capacitance_coefficients, model.capacitance),
        ):
            diag = np.zeros((basis_size * rank, basis_size * rank))
            forward = np.zeros((basis_size * rank, basis_size * width))
            reverse = np.zeros((basis_size * width, basis_size * rank))
            for index, matrix in coefficients.items():
                matrix = sp.csr_matrix(matrix)
                interior_rows = matrix[interior]
                if index == 0:
                    projected = nominal
                else:
                    inner = interior_rows[:, interior]
                    projected = basis.T @ (inner @ basis) if inner.nnz else None
                if projected is not None:
                    _kron_accumulate(diag, tensors[index], projected)
                if width:
                    forward_block = interior_rows[:, boundary_cols]
                    if forward_block.nnz:
                        _kron_accumulate(
                            forward, tensors[index], basis.T @ np.asarray(forward_block.todense())
                        )
                    reverse_block = matrix[boundary_cols][:, interior]
                    if reverse_block.nnz:
                        _kron_accumulate(reverse, tensors[index], reverse_block @ basis)
            pieces[f"{prefix}_diag"].append(diag)
            pieces[f"{prefix}_ib"].append(forward)
            pieces[f"{prefix}_bi"].append(reverse)

    interfaces = {}
    for prefix, coefficients in (("g", conductance_coefficients), ("c", capacitance_coefficients)):
        terms = []
        for index, matrix in coefficients.items():
            block = sp.csr_matrix(matrix)[boundary][:, boundary]
            terms.append((tensors[index], sp.csr_matrix(block)))
        interfaces[prefix] = kron_sum_csr(terms)

    conductance = ReducedBlockOperator(
        pieces["g_diag"], pieces["g_ib"], pieces["g_bi"], interfaces["g"],
        col_index, offsets, boundary_offset,
    )
    capacitance = ReducedBlockOperator(
        pieces["c_diag"], pieces["c_ib"], pieces["c_bi"], interfaces["c"],
        col_index, offsets, boundary_offset,
    )
    return conductance, capacitance


def reduce_rhs_series(
    series,
    models: Sequence[BlockMacromodel],
    boundary: np.ndarray,
    basis_size: int,
) -> ReducedRhsSeries:
    """Project an :class:`~repro.chaos.galerkin.AugmentedRhsSeries` table.

    Interior rows are projected through each atom's basis (one BLAS-3
    product per active chaos index per atom); boundary rows are copied
    exactly.
    """
    boundary = np.asarray(boundary, dtype=int)
    offsets, boundary_offset, size = _layout(models, basis_size, boundary.size)
    times = series.times
    table = np.zeros((times.size, size))
    for index, waveform in series.waveforms:
        for model, offset in zip(models, offsets):
            rank = model.order
            table[:, offset + index * rank : offset + (index + 1) * rank] = (
                waveform[:, model.interior] @ model.projection
            )
        table[
            :,
            boundary_offset + index * boundary.size : boundary_offset + (index + 1) * boundary.size,
        ] = waveform[:, boundary]
    return ReducedRhsSeries(times, table)
