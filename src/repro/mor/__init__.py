"""Model order reduction extension (PRIMA-style block Arnoldi).

:mod:`repro.mor.prima` provides the core reduction; the remaining modules
compose it with the partition/stepping stack into the ``mor`` analysis
engine: per-atom passive macromodels (:mod:`repro.mor.macromodel`), the
reduced block system and its dense solver (:mod:`repro.mor.reduced`), the
stepping adapter (:mod:`repro.mor.adapter`) and the engine itself
(:mod:`repro.mor.engine`).
"""

from .adapter import MorSystemAdapter
from .engine import mor_atom_count, run_mor_transient
from .macromodel import (
    BlockMacromodel,
    block_coupling,
    build_block_macromodel,
    excitation_directions,
    macromodel_key,
)
from .prima import ReducedModel, prima_reduce
from .reduced import (
    ReducedBlockOperator,
    ReducedBlockSolver,
    ReducedRhsSeries,
    build_reduced_operators,
    reduce_rhs_series,
)

__all__ = [
    "ReducedModel",
    "prima_reduce",
    "BlockMacromodel",
    "block_coupling",
    "build_block_macromodel",
    "excitation_directions",
    "macromodel_key",
    "ReducedBlockOperator",
    "ReducedBlockSolver",
    "ReducedRhsSeries",
    "build_reduced_operators",
    "reduce_rhs_series",
    "MorSystemAdapter",
    "mor_atom_count",
    "run_mor_transient",
]
