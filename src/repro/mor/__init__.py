"""Model order reduction extension (PRIMA-style block Arnoldi)."""

from .prima import ReducedModel, prima_reduce

__all__ = ["ReducedModel", "prima_reduce"]
