"""Stepping adapter for the reduced (macromodel) augmented system.

:class:`MorSystemAdapter` plugs the reduced block system into the shared
:class:`repro.stepping.StepLoop`: scheme forms are composed with the
generic :func:`repro.stepping.schemes.step_forms` over the
:class:`~repro.mor.reduced.ReducedBlockOperator` algebra (so every
registered scheme works unchanged), and both the step matrix and the DC
system are factored by dense block elimination
(:class:`~repro.mor.reduced.ReducedBlockSolver`).  The solver is direct,
so the loop's warm-start detection treats it like any factorisation.
"""

from __future__ import annotations

import numpy as np

from ..errors import SolverError
from ..stepping.loop import PreparedSystem, SystemAdapter
from ..stepping.schemes import SteppingScheme, step_forms
from .reduced import ReducedBlockOperator, ReducedBlockSolver, ReducedRhsSeries

__all__ = ["MorSystemAdapter"]


class MorSystemAdapter(SystemAdapter):
    """March the reduced interface system through the shared step loop."""

    def __init__(
        self,
        conductance: ReducedBlockOperator,
        capacitance: ReducedBlockOperator,
        rhs_series: ReducedRhsSeries,
    ):
        if conductance.shape != capacitance.shape:
            raise SolverError("reduced G and C operators must share a shape")
        if rhs_series.size != conductance.size:
            raise SolverError(
                f"reduced RHS width {rhs_series.size} does not match the "
                f"reduced system size {conductance.size}"
            )
        self._conductance = conductance
        self._capacitance = capacitance
        self._rhs_series = rhs_series

    @property
    def size(self) -> int:
        return self._conductance.size

    def prepare(self, scheme: SteppingScheme, times: np.ndarray, h: float) -> PreparedSystem:
        if not np.allclose(self._rhs_series.times, times, atol=1e-18):
            raise SolverError("reduced RHS series was built for a different time axis")
        forms = step_forms(scheme, self._conductance, self._capacitance, h, matrix_free=True)
        return PreparedSystem(
            forms=forms,
            step_solver=ReducedBlockSolver(forms.lhs),
            dc_solver_factory=lambda: ReducedBlockSolver(self._conductance),
            rhs_series=self._rhs_series,
        )
