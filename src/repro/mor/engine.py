"""The ``mor`` analysis engine: macromodel-accelerated partitioned OPERA.

Runs the paper's stochastic Galerkin analysis on the same fixed atom tiling
as the ``hierarchical`` engine, but replaces the exact per-step Schur
condensation with a one-time PRIMA reduction of every atom's nominal
interior (:mod:`repro.mor.macromodel`): the augmented system is projected
through the per-atom bases onto a small block system
(:mod:`repro.mor.reduced`) whose size is the interface plus a handful of
reduced coordinates per atom, the step loop marches *only* that system, and
per-node statistics are back-substituted through the stored projection
bases afterwards (one BLAS-3 product per atom).

Accuracy is controlled by the reduction order ``mor_order`` (matched block
moments ``q``); the default ``q = 2`` reproduces the exact engines' mean
and standard deviation to well below ``1e-3`` relative error on the bench
grids.  Because the projection basis depends only on the nominal block
matrices and the port structure -- never on a corner's sensitivity
magnitudes -- macromodels are cached on the :class:`~repro.api.Analysis`
session and reused across corners, schemes and repeated runs (guarded by
:meth:`~repro.mor.macromodel.BlockMacromodel.covers`), mirroring how the
sweep runner reuses factorizations across corners of one topology.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

import numpy as np
import scipy.sparse as sp

from ..api.engines import (
    _check_mode,
    _reject_unknown,
    _resolve_transient,
    register_engine,
)
from ..api.result import StochasticResultView
from ..chaos.galerkin import GalerkinSystem
from ..chaos.response import StochasticTransientResult
from ..chaos.triples import triple_product_tensors
from ..errors import AnalysisError
from ..partition.engine import system_partition
from ..partition.partitioner import GridPartition
from ..sim.transient import TransientConfig
from ..stepping import StepLoop
from ..telemetry import current_telemetry
from ..variation.model import StochasticSystem
from .adapter import MorSystemAdapter
from .macromodel import (
    block_coupling,
    build_block_macromodel,
    excitation_directions,
    macromodel_key,
)
from .reduced import build_reduced_operators, reduce_rhs_series

__all__ = ["mor_atom_count", "run_mor_transient"]

#: The default reduction order (matched block moments ``q``).
DEFAULT_REDUCTION_ORDER = 2


def mor_atom_count(num_nodes: int) -> int:
    """The engine's default atom count for a grid of ``num_nodes`` nodes.

    Much coarser than the ``hierarchical`` default on purpose: the reduced
    system's size is dominated by the interface (every cut adds roughly
    ``2 sqrt(n)`` boundary nodes times the chaos-basis size), while each
    atom contributes only ``ports x q`` reduced coordinates -- so fewer,
    larger atoms keep the marched system small.  Measured on a 25857-node
    grid, 2 atoms run ~2.6x faster than 4 and ~4x faster than 8 at equal
    accuracy; the count only grows past ``~40k`` nodes to bound the dense
    per-atom block sizes.
    """
    return max(2, min(8, 1 << int(np.log2(max(1.0, num_nodes / 20000)))))


def _uncached_macromodel(key, builder, verify):
    """Provider used when no session cache is attached: always build."""
    return builder(), False


def run_mor_transient(
    system: StochasticSystem,
    galerkin: GalerkinSystem,
    transient: TransientConfig,
    partition: Optional[GridPartition] = None,
    atoms: Optional[int] = None,
    reduction_order: int = DEFAULT_REDUCTION_ORDER,
    observe: Sequence[int] = (),
    store_coefficients: bool = False,
    macromodel_provider=None,
) -> StochasticTransientResult:
    """Macromodel-accelerated stochastic Galerkin transient.

    Parameters
    ----------
    system, galerkin:
        The stochastic system and its assembled augmented Galerkin system.
    transient:
        Time axis and integration scheme (any registered stepping scheme).
    partition:
        Optional node partition; defaults to :func:`system_partition` with
        :func:`mor_atom_count` atoms.
    atoms:
        Atom-count override (changes the tiling and the reduced system).
    reduction_order:
        Matched block moments ``q`` of every atom's PRIMA reduction.
    observe:
        Global node indices whose voltages must be reproduced *exactly* to
        moment order; added to the reduction ports of the atoms containing
        them.  Statistics at every node are always produced -- this only
        sharpens accuracy at specific nodes of interest.
    store_coefficients:
        Keep the full chaos-coefficient tensor (memory-hungry on large
        grids); by default only mean/variance waveforms are stored.
    macromodel_provider:
        ``provider(key, builder, verify) -> (model, reused)`` hook for
        cross-run macromodel caching (see :meth:`repro.api.Analysis.macromodel`).
        ``None`` builds every block fresh.
    """
    if reduction_order < 1:
        raise AnalysisError(f"mor_order must be at least 1, got {reduction_order}")
    started = time.perf_counter()
    telemetry = current_telemetry()
    provider = macromodel_provider if macromodel_provider is not None else _uncached_macromodel
    basis = galerkin.basis
    num_nodes = system.num_nodes
    observe = np.asarray(sorted(set(int(node) for node in observe)), dtype=int)
    if observe.size and (observe.min() < 0 or observe.max() >= num_nodes):
        raise AnalysisError("observe nodes out of range")
    if partition is None:
        partition = system_partition(
            system, num_atoms=atoms if atoms is not None else mor_atom_count(num_nodes)
        )
    boundary = partition.boundary
    if not boundary.size:
        raise AnalysisError("mor engine requires a partition with a non-empty boundary")

    times = transient.times()
    series = galerkin.rhs_series(times)

    g_nominal = sp.csr_matrix(system.g_nominal)
    c_nominal = sp.csr_matrix(system.c_nominal)
    models = []
    local_columns = []
    built = reused_count = 0
    for atom, interior in enumerate(partition.interiors):
        if not interior.size:
            continue
        g_interior = g_nominal[interior][:, interior]
        c_interior = c_nominal[interior][:, interior]
        adjacency, columns = block_coupling(system, interior, boundary)
        observed = np.where(np.isin(interior, observe))[0]
        directions = excitation_directions(series.waveforms, interior)
        key = macromodel_key(g_interior, c_interior, adjacency, observed, reduction_order)

        def builder(
            atom=atom,
            interior=interior,
            g_interior=g_interior,
            c_interior=c_interior,
            adjacency=adjacency,
            observed=observed,
            directions=directions,
            key=key,
        ):
            return build_block_macromodel(
                atom,
                interior,
                g_interior,
                c_interior,
                adjacency,
                observed,
                directions,
                reduction_order,
                key=key,
            )

        model, reused = provider(key, builder, lambda model: model.covers(directions))
        if reused:
            reused_count += 1
            telemetry.count("macromodels_reused")
        else:
            built += 1
            telemetry.count("macromodels_built")
        models.append(model)
        local_columns.append(columns)

    tensors = triple_product_tensors(
        basis,
        set(galerkin.conductance_coefficients) | set(galerkin.capacitance_coefficients),
    )
    with telemetry.span(
        "mor.project", phase="project", blocks=len(models), order=int(reduction_order)
    ):
        conductance, capacitance = build_reduced_operators(
            models,
            local_columns,
            boundary,
            basis.size,
            galerkin.conductance_coefficients,
            galerkin.capacitance_coefficients,
            tensors,
        )
        reduced_series = reduce_rhs_series(series, models, boundary, basis.size)

    adapter = MorSystemAdapter(conductance, capacitance, reduced_series)
    history = StepLoop(adapter, transient.scheme, times, transient.dt).run(store=True)

    # Back-substitute per-node statistics through the projection bases: one
    # BLAS-3 lift per atom, exact copy for the interface.
    states = history.states
    if store_coefficients:
        coefficients = np.zeros((times.size, basis.size, num_nodes))
    else:
        mean = np.zeros((times.size, num_nodes))
        variance = np.zeros((times.size, num_nodes))

    def scatter(nodes: np.ndarray, lifted: np.ndarray) -> None:
        if store_coefficients:
            coefficients[:, :, nodes] = lifted
        else:
            mean[:, nodes] = lifted[:, 0, :]
            if basis.size > 1:
                variance[:, nodes] = np.sum(lifted[:, 1:, :] ** 2, axis=1)

    for model, offset in zip(models, conductance.offsets):
        rank = model.order
        reduced = states[:, offset : offset + basis.size * rank]
        reduced = reduced.reshape(times.size, basis.size, rank)
        scatter(model.interior, reduced @ model.projection.T)
    tail = states[:, conductance.boundary_offset :]
    scatter(boundary, tail.reshape(times.size, basis.size, boundary.size))

    elapsed = time.perf_counter() - started
    if store_coefficients:
        result = StochasticTransientResult(
            times=times,
            basis=basis,
            vdd=system.vdd,
            coefficients=coefficients,
            node_names=system.node_names,
            wall_time=elapsed,
        )
    else:
        result = StochasticTransientResult(
            times=times,
            basis=basis,
            vdd=system.vdd,
            mean=mean,
            variance=variance,
            node_names=system.node_names,
            wall_time=elapsed,
        )
    result.partition_stats = {
        **partition.stats(),
        "augmented_interface_nodes": int(basis.size * boundary.size),
    }
    result.mor_stats = {
        "reduction_order": int(reduction_order),
        "reduced_size": int(adapter.size),
        "full_size": int(basis.size * num_nodes),
        "macromodels_built": int(built),
        "macromodels_reused": int(reused_count),
        "block_orders": [int(model.order) for model in models],
    }
    return result


@register_engine("mor")
def _run_mor_engine(session, mode: Optional[str] = None, **options):
    """Macromodel-accelerated partitioned stochastic Galerkin analysis.

    Options: ``order`` (chaos order, default 2), ``mor_order`` (PRIMA
    reduction order ``q``, default 2), ``atoms`` (tiling override),
    ``observe`` (node indices added to the reduction ports),
    ``store_coefficients`` and time-axis overrides
    (``t_stop``/``dt``/``scheme``/...).  Transient only.  Macromodels are
    cached on the session and reused across corners (see
    :meth:`repro.api.Analysis.macromodel`).
    """
    mode = mode or "transient"
    _check_mode("mor", mode, ("transient",))
    order = int(options.pop("order", 2))
    reduction_order = int(options.pop("mor_order", DEFAULT_REDUCTION_ORDER))
    atoms = options.pop("atoms", None)
    if atoms is not None:
        atoms = int(atoms)
    observe = tuple(options.pop("observe", ()))
    store_coefficients = bool(options.pop("store_coefficients", False))
    transient = _resolve_transient(session, options)
    _reject_unknown(options, "mor", mode)

    system = session.system
    galerkin = session.galerkin(order)
    result = run_mor_transient(
        system,
        galerkin,
        transient,
        atoms=atoms,
        reduction_order=reduction_order,
        observe=observe,
        store_coefficients=store_coefficients,
        macromodel_provider=session.macromodel,
    )
    view = StochasticResultView("mor", "transient", result, system.vdd)
    view.transient = transient
    view.partition_stats = result.partition_stats
    view.mor_stats = result.mor_stats
    return view
