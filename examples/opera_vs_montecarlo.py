"""OPERA versus Monte Carlo: regenerate one row of Table 1.

The script builds a synthetic grid (size selectable) and calls
:meth:`repro.Analysis.compare`, which runs the order-2 OPERA analysis and a
Monte Carlo sweep with the same time axis and assembles the accuracy /
speed-up row in the layout of Table 1 of the paper.  The comparison
automatically records the worst node's Monte Carlo waveforms, so the
voltage-drop distribution comparison of Figure 1 follows without a re-run.

Run with:  python examples/opera_vs_montecarlo.py [--nodes 1500] [--samples 100]
"""

import argparse

from repro import Analysis, ascii_histogram, drop_distribution_comparison


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=1500, help="approximate grid size")
    parser.add_argument("--samples", type=int, default=100, help="Monte Carlo samples")
    parser.add_argument("--order", type=int, default=2, help="chaos expansion order")
    args = parser.parse_args()

    session = Analysis.from_spec(args.nodes, seed=5)
    session.with_transient(t_stop=3.0e-9, dt=0.2e-9)
    print(f"grid: {session.netlist.stats()}")

    print(f"running OPERA (order {args.order}) and Monte Carlo ({args.samples} samples) ...")
    comparison = session.compare(
        order=args.order,
        samples=args.samples,
        seed=11,
        name="example",
    )
    print(f"  OPERA {comparison.reference.wall_time:.2f} s, "
          f"Monte Carlo {comparison.baseline.wall_time:.2f} s")
    print()
    print(comparison.table(title="Table 1 row for this grid"))

    worst = int(comparison.reference.raw.worst_node())
    print()
    figure = drop_distribution_comparison(
        comparison.reference.raw, comparison.baseline.raw, node=worst
    )
    print(ascii_histogram(figure))


if __name__ == "__main__":
    main()
