"""OPERA versus Monte Carlo: regenerate one row of Table 1.

The script builds a synthetic grid (size selectable), runs the order-2 OPERA
analysis and a Monte Carlo sweep with the same time axis, and prints the
accuracy / speed-up row in the layout of Table 1 of the paper, followed by
the voltage-drop distribution comparison of Figure 1 at the worst node.

Run with:  python examples/opera_vs_montecarlo.py [--nodes 1500] [--samples 100]
"""

import argparse

from repro import (
    MonteCarloConfig,
    OperaConfig,
    Table1Row,
    TransientConfig,
    VariationSpec,
    ascii_histogram,
    build_stochastic_system,
    compare_to_monte_carlo,
    drop_distribution_comparison,
    format_table1,
    generate_power_grid,
    run_monte_carlo_transient,
    run_opera_transient,
    spec_for_node_count,
    stamp,
    three_sigma_spread_percent,
    transient_analysis,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=1500, help="approximate grid size")
    parser.add_argument("--samples", type=int, default=100, help="Monte Carlo samples")
    parser.add_argument("--order", type=int, default=2, help="chaos expansion order")
    args = parser.parse_args()

    netlist = generate_power_grid(spec_for_node_count(args.nodes, seed=5))
    stamped = stamp(netlist)
    system = build_stochastic_system(stamped, VariationSpec.paper_defaults())
    print(f"grid: {netlist.stats()}")

    transient = TransientConfig(t_stop=3.0e-9, dt=0.2e-9)

    print(f"running OPERA (order {args.order}) ...")
    opera_result = run_opera_transient(
        system, OperaConfig(transient=transient, order=args.order)
    )
    print(f"  done in {opera_result.wall_time:.2f} s")

    worst = int(opera_result.worst_node())
    print(f"running Monte Carlo ({args.samples} samples) ...")
    mc_result = run_monte_carlo_transient(
        system,
        MonteCarloConfig(
            transient=transient,
            num_samples=args.samples,
            seed=11,
            antithetic=True,
            store_nodes=(worst,),
        ),
    )
    print(f"  done in {mc_result.wall_time:.2f} s")

    metrics = compare_to_monte_carlo(opera_result, mc_result)
    nominal = transient_analysis(stamped, transient)
    spread = three_sigma_spread_percent(opera_result, nominal)
    row = Table1Row.from_metrics(
        name="example",
        num_nodes=system.num_nodes,
        metrics=metrics,
        three_sigma_spread=spread,
        monte_carlo_seconds=mc_result.wall_time,
        opera_seconds=opera_result.wall_time,
    )
    print()
    print(format_table1([row], title="Table 1 row for this grid"))

    print()
    comparison = drop_distribution_comparison(opera_result, mc_result, node=worst)
    print(ascii_histogram(comparison))


if __name__ == "__main__":
    main()
