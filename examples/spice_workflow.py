"""SPICE-deck workflow: export, inspect, re-import and analyse a grid.

Industrial flows exchange power grids as flat SPICE decks.  This example
shows the interoperability path:

1. synthesise a grid and write it as a SPICE-subset deck (R/C/I/V cards),
2. read the deck back through ``Analysis.from_spice`` (as a sign-off tool
   would receive it),
3. run the nominal DC analysis and the OPERA stochastic analysis on the
   re-imported netlist -- two engines, one session,
4. show the equivalent ``opera-run`` command line.

Run with:  python examples/spice_workflow.py [--keep deck.sp]
"""

import argparse
import os
import tempfile

from repro import Analysis, GridSpec, generate_power_grid, write_spice


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--keep",
        metavar="PATH",
        default=None,
        help="write the deck to this path and keep it (default: temporary file)",
    )
    args = parser.parse_args()

    # 1. synthesise and export
    spec = GridSpec(nx=14, ny=14, num_layers=2, num_blocks=5, pad_spacing=2, seed=33)
    original = generate_power_grid(spec)
    deck_path = args.keep or os.path.join(tempfile.gettempdir(), "opera_example_grid.sp")
    write_spice(original, deck_path)
    print(f"wrote {original.stats()}")
    print(f"  -> {deck_path} ({os.path.getsize(deck_path) / 1024:.1f} KiB)")

    # 2. re-import into a fresh analysis session
    session = Analysis.from_spice(deck_path)
    session.with_transient(t_stop=3.0e-9, dt=0.2e-9)
    print(f"re-imported: {session.netlist.stats()}")

    # 3. nominal and stochastic analysis on the same session
    dc = session.run("deterministic", mode="dc", t=0.3e-9)
    worst = int(dc.raw.worst_node())
    print(
        f"nominal DC worst drop: {1e3 * dc.raw.worst_drop:.1f} mV at node "
        f"{session.stamped.node_names[worst]}"
    )

    result = session.run("opera", order=2)
    print()
    print(session.summarize(result))

    # 4. the same flow from the command line
    print()
    print("equivalent CLI:")
    print(f"  opera-run analyze --spice {deck_path} --order 2 --t-stop 3e-9 --dt 0.2e-9")

    if not args.keep:
        os.unlink(deck_path)


if __name__ == "__main__":
    main()
