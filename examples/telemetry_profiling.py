"""Structured telemetry: profile a run, read the trace, profile a sweep.

:mod:`repro.telemetry` instruments every layer of the library -- phase
spans (assemble / factor / step / fit) around the engines and solver
backends, and a per-step aggregate recorded by the shared integration loop
(solve counts, iteration totals, warm-start hit rate, final residuals).
Telemetry is off by default and free when off; results are bit-identical
either way because instrumentation only ever *reads* solver state.

This demo walks the three consumption paths:

1. scoped profiling of a single analysis run -- per-step solver metrics
   land on the result view under ``solver_stats["steps"]`` and the phase
   timings on the telemetry context;
2. the versioned JSON-lines trace (schema ``repro.telemetry/trace/v1``):
   written with :func:`~repro.telemetry.write_trace`, schema-checked with
   :func:`~repro.telemetry.validate_trace`, rendered with
   :func:`~repro.telemetry.render_report` (the same report the
   ``opera-run trace-report`` subcommand prints);
3. a profiled sweep campaign -- every case profiled in its worker process,
   summaries merged deterministically into the benchmark artifact.

Run with:  PYTHONPATH=src python examples/telemetry_profiling.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import telemetry
from repro.api import Analysis
from repro.sim import TransientConfig
from repro.sweep import SweepPlan, SweepRunner, record_from_outcome


def profile_one_run() -> None:
    print("=== 1. Profiling one analysis run ===")
    session = Analysis.from_spec(120, seed=1).with_transient(t_stop=4e-9, dt=0.5e-9)

    # Baseline without telemetry, then the same run profiled: identical numbers.
    baseline = session.run("opera", order=2, solver="cg")
    with telemetry.profile() as tele:
        profiled = session.run("opera", order=2, solver="cg")
    assert np.array_equal(baseline.mean(), profiled.mean())
    assert np.array_equal(baseline.std(), profiled.std())
    print("telemetry on/off waveforms bit-identical: True")

    steps = profiled.solver_stats["steps"]
    print(f"steps={steps['steps']}  solves={steps['solves']}  "
          f"warm-start hit rate={steps['warm_start_hit_rate']:.2f}")
    print(f"CG iterations total={steps['total_iterations']}  "
          f"last residual={steps['last_relative_residual']:.2e}")
    for phase, entry in tele.phase_totals().items():
        print(f"  phase {phase:10s} count={entry['count']:3d}  total={entry['total_s']:.4f}s")
    print()


def export_and_report(trace_path: Path) -> None:
    print("=== 2. Trace export, validation, report ===")
    session = Analysis.from_spec(120, seed=1).with_transient(t_stop=4e-9, dt=0.5e-9)
    with telemetry.profile() as tele:
        session.run("opera", order=2)
    telemetry.write_trace(tele, trace_path)

    problems = telemetry.validate_trace(trace_path)
    print(f"wrote {trace_path.name}; schema problems: {problems or 'none'}")
    events = telemetry.read_trace(trace_path)
    print(telemetry.render_report(events))
    print()


def profile_a_sweep() -> None:
    print("=== 3. Profiling a sweep campaign ===")
    plan = SweepPlan.grid(
        [60, 90],
        engines=("opera", "montecarlo"),
        orders=(2,),
        samples=16,
        transient=TransientConfig(t_stop=2e-9, dt=0.5e-9),
    )
    outcome = SweepRunner(workers=1, telemetry=True).run(plan)
    for result in outcome:
        run_s = result.telemetry["phases"]["run"]["total_s"]
        print(f"  {result.name:28s} profiled run time {run_s:.3f}s")

    merged = outcome.telemetry_summary()
    print(f"campaign: {merged['cases']} case(s), {merged['spans']} span(s); "
          f"merged step solves={merged['step_stats']['solves']}")
    record = record_from_outcome(outcome)
    print(f"BenchRecord carries the merged summary: {'telemetry' in record.to_dict()}")


def main() -> None:
    profile_one_run()
    with tempfile.TemporaryDirectory() as tmp:
        export_and_report(Path(tmp) / "trace.jsonl")
    profile_a_sweep()


if __name__ == "__main__":
    main()
