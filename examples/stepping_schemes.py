"""Stepping schemes side by side: accuracy vs damping on one grid.

Every transient engine integrates ``C dx/dt + G x = u(t)`` through the
shared ``repro.stepping`` core, so the scheme is a one-keyword choice on
any engine.  This example runs the OPERA engine under the three built-in
schemes against a fine-step reference, and registers a custom scheme to
show the extension point.

Note the trade-off the numbers expose: the excitation is a sharp-edged
pulse train, and at coarse steps the second-order trapezoidal rule *rings*
on the edges while the damped first-order schemes stay monotone -- so
backward Euler can come out closer here despite its lower formal order.
(The clean convergence-order measurement on a smooth RC reference lives in
``tests/test_stepping.py``.)

Run with:  python examples/stepping_schemes.py
"""

import numpy as np

from repro import Analysis
from repro.stepping import (
    ThetaScheme,
    register_scheme,
    resolve_scheme,
    unregister_scheme,
)

session = Analysis.from_spec(500, seed=1)
session.with_transient(t_stop=4.0e-9, dt=0.4e-9)

# A fine-step trapezoidal run (4x smaller step) as the accuracy yardstick.
reference = session.run("opera", order=2, scheme="trapezoidal", dt=0.1e-9)
reference_mean = reference.mean()[::4]

print(f"{'scheme':>16s}  {'order':>5s}  {'max |mean - ref| (mV)':>22s}")
for spec in ("trapezoidal", "backward-euler", "theta:0.75"):
    run = session.run("opera", order=2, scheme=spec)
    error = 1e3 * float(np.max(np.abs(run.mean() - reference_mean)))
    convergence = resolve_scheme(spec).convergence_order
    print(f"{spec:>16s}  {convergence:5d}  {error:22.4f}")

# The same keyword works on every engine:
hierarchical = session.run("hierarchical", order=2, scheme="theta:0.75")
montecarlo = session.run("montecarlo", samples=64, scheme="theta:0.75")
print(
    f"\ntheta:0.75 across engines: hierarchical worst drop "
    f"{1e3 * hierarchical.worst_drop():.1f} mV, "
    f"MC worst drop {1e3 * montecarlo.worst_drop():.1f} mV"
)

# Custom schemes plug into the same registry the CLI and sweeps resolve.
register_scheme("damped", lambda parameter=None: ThetaScheme(0.8))
try:
    damped = session.run("opera", order=2, scheme="damped")
    print(f"custom 'damped' scheme: worst drop {1e3 * damped.worst_drop():.1f} mV")
finally:
    unregister_scheme("damped")
