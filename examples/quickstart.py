"""Quickstart: stochastic IR-drop analysis of a synthetic power grid.

This is the 60-second tour of the library, driven through the
:class:`repro.Analysis` session facade:

1. synthesise a two-layer power grid with functional-block loads,
2. attach the paper's inter-die process variation model
   (3-sigma: 20 % W, 15 % T, 20 % Leff),
3. run the OPERA order-2 stochastic transient analysis,
4. print the variation report (worst node, +/-3-sigma spread).

Run with:  python examples/quickstart.py
"""

from repro import Analysis, GridSpec, VariationSpec


def main() -> None:
    # 1. A small synthetic grid (Analysis.from_spec also accepts a node count).
    spec = GridSpec(nx=20, ny=20, num_layers=2, num_blocks=6, pad_spacing=2, seed=1)
    session = Analysis.from_spec(spec, variation=VariationSpec.paper_defaults())
    session.with_transient(t_stop=4.0e-9, dt=0.2e-9)
    print(f"generated grid: {session.netlist.stats()}")

    # 2. The stamped MNA matrices and the stochastic system are built lazily.
    print(f"random variables: {session.system.variable_names()}")

    # 3. OPERA stochastic transient analysis (order-2 Hermite chaos).
    result = session.run("opera", order=2)

    # 4. Report: the paper's headline is the ~+/-35 % 3-sigma spread.  The
    #    nominal reference transient comes from the session cache.
    report = session.summarize(result)
    print()
    print(report)
    print()
    print("worst nodes:")
    for node_summary in report.node_summaries[:5]:
        print(f"  {node_summary}")


if __name__ == "__main__":
    main()
