"""Quickstart: stochastic IR-drop analysis of a synthetic power grid.

This is the 60-second tour of the library:

1. synthesise a two-layer power grid with functional-block loads,
2. attach the paper's inter-die process variation model
   (3-sigma: 20 % W, 15 % T, 20 % Leff),
3. run the OPERA order-2 stochastic transient analysis,
4. print the variation report (worst node, +/-3-sigma spread).

Run with:  python examples/quickstart.py
"""

from repro import (
    GridSpec,
    OperaConfig,
    TransientConfig,
    VariationSpec,
    build_stochastic_system,
    generate_power_grid,
    run_opera_transient,
    stamp,
    summarize,
    transient_analysis,
)


def main() -> None:
    # 1. A small synthetic grid (use spec_for_node_count for bigger ones).
    spec = GridSpec(nx=20, ny=20, num_layers=2, num_blocks=6, pad_spacing=2, seed=1)
    netlist = generate_power_grid(spec)
    print(f"generated grid: {netlist.stats()}")

    # 2. Stamp the MNA matrices and attach the paper's variation model.
    stamped = stamp(netlist)
    system = build_stochastic_system(stamped, VariationSpec.paper_defaults())
    print(f"random variables: {system.variable_names()}")

    # 3. OPERA stochastic transient analysis (order-2 Hermite chaos).
    transient = TransientConfig(t_stop=4.0e-9, dt=0.2e-9)
    result = run_opera_transient(system, OperaConfig(transient=transient, order=2))

    # 4. Report: the paper's headline is the ~+/-35 % 3-sigma spread.
    nominal = transient_analysis(stamped, transient)
    report = summarize(result, nominal)
    print()
    print(report)
    print()
    print("worst nodes:")
    for node_summary in report.node_summaries[:5]:
        print(f"  {node_summary}")


if __name__ == "__main__":
    main()
