"""Partitioned power-grid analysis in ~20 lines.

Builds a synthetic grid, compares the partitioned Schur-complement solver
against the monolithic sparse LU on the nominal system (they agree to
machine precision), then runs the partitioned ``hierarchical`` engine and
checks it against the monolithic ``opera`` engine.  The hierarchical
statistics are bit-identical for every ``partitions=`` / ``workers=``
setting; only the schedule changes.

Run with:  python examples/partition_quickstart.py
"""

import numpy as np

from repro import Analysis
from repro.sim.linear import make_solver

session = Analysis.from_spec(2500, seed=1).with_transient(t_stop=2.4e-9, dt=0.2e-9)

# --- 1. the "schur" solver backend: a drop-in partitioned direct solve ----
conductance = session.stamped.conductance
rhs = session.stamped.rhs(0.0)
direct = make_solver(conductance, method="direct").solve(rhs)
schur_solver = make_solver(conductance, method="schur", num_parts=4)
schur = schur_solver.solve(rhs)
error = np.max(np.abs(schur - direct)) / np.max(np.abs(direct))
print(f"schur vs direct: relative error {error:.2e}")
print(f"partition: {schur_solver.stats['interface_nodes']} interface nodes, "
      f"interiors {schur_solver.stats['interior_sizes']}")

# --- 2. the hierarchical engine: partitioned OPERA ------------------------
opera = session.run("opera", order=2)
hier = session.run("hierarchical", order=2, partitions=4)
mean_error = np.max(np.abs(hier.mean() - opera.mean()))
sigma_error = np.max(np.abs(hier.std() - opera.std()))
print(f"hierarchical vs opera: |mean diff| {mean_error:.2e} V, "
      f"|sigma diff| {sigma_error:.2e} V")
print(f"worst drop {1e3 * hier.worst_drop():.1f} mV in {hier.wall_time:.2f} s")
print(f"partition diagnostics: {hier.to_dict()['partition']}")
