"""Macromodel-accelerated analysis in ~25 lines.

Builds a synthetic grid, runs the exact partitioned ``hierarchical``
engine and the macromodel-accelerated ``mor`` engine side by side (the
mor statistics match to well below 1e-3 relative at the default reduction
order), then demonstrates the session macromodel cache: a second run and
a different variation corner both reuse the PRIMA macromodels built by
the first run, because the projection bases depend only on the nominal
block matrices and the port structure.

Run with:  python examples/mor_quickstart.py
"""

import numpy as np

from repro import Analysis
from repro.sweep.plan import corner_spec

session = Analysis.from_spec(5000, seed=1).with_transient(t_stop=2.4e-9, dt=0.2e-9)

# --- 1. accuracy: mor vs the exact hierarchical engine --------------------
hier = session.run("hierarchical", order=2)
mor = session.run("mor", order=2)
mean_scale = np.max(np.abs(hier.mean()))
std_scale = np.max(np.abs(hier.std()))
mean_error = np.max(np.abs(mor.mean() - hier.mean())) / mean_scale
sigma_error = np.max(np.abs(mor.std() - hier.std())) / std_scale
print(f"mor vs hierarchical: relative mean error {mean_error:.2e}, "
      f"relative sigma error {sigma_error:.2e}")
stats = mor.mor_stats
print(f"reduced {stats['reduced_size']} of {stats['full_size']} unknowns "
      f"(q={stats['reduction_order']}, block orders {stats['block_orders']})")
print(f"hierarchical {hier.wall_time:.2f} s   mor {mor.wall_time:.2f} s "
      f"({hier.wall_time / mor.wall_time:.1f}x)")

# --- 2. the macromodel cache: warm runs and corner reuse ------------------
warm = session.run("mor", order=2)
print(f"warm run: built {warm.mor_stats['macromodels_built']}, "
      f"reused {warm.mor_stats['macromodels_reused']}")

# A different corner rescales the sensitivity magnitudes but keeps the
# nominal block matrices, so the cached macromodels still apply:
corner = session.with_variation(corner_spec("wide")).run("mor", order=2)
print(f"wide corner: built {corner.mor_stats['macromodels_built']}, "
      f"reused {corner.mor_stats['macromodels_reused']}")
