"""Intra-die (spatially correlated) variation and variance attribution.

The paper's experiments use inter-die variation (one germ for the whole die),
but its framework extends directly to intra-die variation: model each
parameter as a spatial random field over chip regions, decorrelate the field
with PCA, and run the same Galerkin projection with the resulting multi-germ
basis.  This example

1. builds the same grid under three correlation lengths (fully correlated,
   chip-scale, and nearly local variation), injecting each spatial system
   into one :class:`repro.Analysis` session with ``with_system``,
2. shows how the voltage-drop sigma shrinks as the variation decorrelates
   (local variations average out across the grid),
3. uses the Sobol' variance decomposition that the chaos expansion provides
   for free to attribute the worst node's variability to metal (W/T) versus
   channel-length (Leff) variation.

Run with:  python examples/intra_die_spatial.py
"""

from repro import (
    Analysis,
    GridSpec,
    RegionPartition,
    SpatialVariationSpec,
    VariationSpec,
    build_spatial_stochastic_system,
    generate_power_grid,
    stamp,
    transient_total_indices,
)


def main() -> None:
    spec = GridSpec(nx=16, ny=16, num_layers=2, num_blocks=6, pad_spacing=2, seed=17)
    netlist = generate_power_grid(spec)
    stamped = stamp(netlist)
    partition = RegionPartition(nx=spec.nx, ny=spec.ny, region_rows=3, region_cols=3)
    session = Analysis.from_netlist(netlist, stamped=stamped)
    session.with_transient(t_stop=3.0e-9, dt=0.2e-9)
    print(f"grid: {netlist.stats()}, {partition.num_regions} chip regions")

    # --- correlation-length sweep -------------------------------------------
    print("\nvoltage-drop sigma vs spatial correlation length")
    print("  correlation length (um)   germs   basis terms   worst-node sigma (mV)")
    for label, length in (("inter-die (infinite)", 1e9), ("chip-scale", 150.0), ("local", 10.0)):
        system = build_spatial_stochastic_system(
            netlist,
            partition,
            SpatialVariationSpec(correlation_length=length, energy_fraction=0.98),
            stamped=stamped,
        )
        session.with_system(system)
        result = session.run("opera", order=2).raw
        worst = result.worst_node()
        step = result.peak_time_index(worst)
        print(
            f"  {label:>22}   {system.num_variables:5d}   {result.basis.size:11d}   "
            f"{1e3 * result.std_drop[step, worst]:20.3f}"
        )

    # --- variance attribution at the worst node ------------------------------
    print("\nvariance attribution (inter-die model, order 2)")
    session.with_variation(VariationSpec.paper_defaults())
    inter = session.system
    result = session.run("opera", order=2).raw
    worst = result.worst_node()
    indices = transient_total_indices(result, worst, variable_names=inter.variable_names())
    name = result.node_names[worst] if result.node_names else worst
    print(f"  worst node {name}: total-effect Sobol' indices")
    for germ, value in sorted(indices.items(), key=lambda item: -item[1]):
        meaning = "metal W/T (conductance)" if "G" in germ else "channel length Leff"
        print(f"    {germ:6s} ({meaning:<24s}): {100 * value:5.1f}% of the drop variance")


if __name__ == "__main__":
    main()
