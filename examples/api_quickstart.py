"""The ``Analysis`` facade in ~10 lines: generate, run OPERA, compare to MC.

One session object owns the grid, the variation model and a cache of
expensive intermediates (chaos bases, LU factorisations, Galerkin
assemblies), so the OPERA run, the Monte Carlo baseline and the comparison
all reuse each other's work.

Run with:  python examples/api_quickstart.py
"""

from repro import Analysis, GridSpec

session = Analysis.from_spec(GridSpec(nx=20, ny=20, num_layers=2, num_blocks=6, seed=1))
session.with_transient(t_stop=4.0e-9, dt=0.2e-9)

opera = session.run("opera", order=2)
print(f"OPERA: worst drop {1e3 * opera.worst_drop():.1f} mV in {opera.wall_time:.2f} s")
print(session.summarize(opera))

print()
print(session.compare(samples=100))  # Table-1 style accuracy/speed-up row
print()
print(f"cache reuse: {session.cache_info()}")
