"""Non-intrusive regression PCE in ~30 lines.

Builds a synthetic grid, fits a chaos expansion of the transient voltage
drop from sampled deterministic solves (the ``pce-regression`` engine),
and checks it against the intrusive Galerkin projection (``opera``): the
moments agree to ~1e-2 relative at a 2x sample budget while never touching
the grid equations.  Then a sparse Lasso fit at a budget *below* the basis
size, and a germ ranking straight from the fitted coefficients.

Run with:  python examples/pce_regression.py
"""

import numpy as np

from repro import Analysis
from repro.analysis import sobol_from_coefficients

session = Analysis.from_spec(2000, seed=1).with_transient(t_stop=2.4e-9, dt=0.2e-9)

# --- 1. regression fit vs Galerkin projection -----------------------------
opera = session.run("opera", order=2)
regression = session.run("pce-regression", order=2, samples=60, seed=3, workers=2)
mean_error = np.max(np.abs(regression.mean() - opera.mean()))
sigma_error = np.max(np.abs(regression.std() - opera.std()))
print(f"regression vs opera: |mean diff| {mean_error:.2e} V, "
      f"|sigma diff| {sigma_error:.2e} V")
summary = regression.to_dict()
print(f"fit: {summary['num_samples']} samples "
      f"({summary['oversampling']:.1f}x oversampling), "
      f"fitter {summary['fitter']}, "
      f"design condition {summary['design_condition']:.2f}")

# --- 2. a sparse fit below the determined sample budget -------------------
basis = regression.raw.basis
sparse = session.run(
    "pce-regression", order=2, samples=basis.size - 1, seed=3, fit="lasso",
    fit_options={"debias": True},
)
sparse_error = np.max(np.abs(sparse.mean() - opera.mean()))
print(f"lasso with {basis.size - 1} samples < {basis.size} terms: "
      f"|mean diff| {sparse_error:.2e} V")

# --- 3. germ ranking straight from the fitted coefficients ----------------
worst = regression.raw.worst_node()
expansion = regression.raw.node_expansion(worst, regression.raw.peak_time_index(worst))
indices = sobol_from_coefficients(basis, expansion[:, None])
print(f"variance ranking at the worst node ({regression.raw.node_names[worst]}):")
for name, total in indices.ranked(0):
    print(f"  {name:12s} total effect {total:.3f}")
