"""Batched sweeps: topology-grouped scheduling, identical numbers, more cases/s.

A corner sweep runs many scenarios on the *same* grid.  With
``SweepRunner(batch=True)`` the plan is regrouped by grid topology and each
group executes through the batched scheduler
(:class:`~repro.sweep.BatchedCaseRunner`), which deduplicates everything
the topology determines: one symbolic analysis and one numeric LU per
distinct step-matrix sparsity pattern, one stacked multi-RHS march for all
RHS-only ``opera``/``decoupled`` cases, and one run per distinct scenario
(``deterministic`` corners replicate, ``opera``/``decoupled`` twins share a
trajectory).

This demo runs the same corner plan unbatched and batched, shows the
statistics are bit-identical case by case, and inspects the artifact
fields the batched path adds (``reused_factorization`` per case,
``cases_per_second`` in the record config, the ``batched_cases``
telemetry counter).

Run with:  PYTHONPATH=src python examples/batched_sweep.py
"""

import numpy as np

from repro import SweepPlan, SweepRunner
from repro.sim import TransientConfig
from repro.sweep import group_cases, record_from_outcome, topology_key


def main() -> None:
    plan = SweepPlan.grid(
        [250],
        engines=("opera", "decoupled", "deterministic"),
        orders=(2,),
        corners=("rhs-only", "rhs-wide", "rhs-tight"),
        transient=TransientConfig(t_stop=1.2e-9, dt=0.2e-9),
        base_seed=7,
    )
    groups = group_cases(plan.cases)
    print(f"{len(plan.cases)} case(s) in {len(groups)} topology group(s):")
    for group in groups:
        print(f"  {topology_key(group[0])}: {[case.name for case in group]}")

    # The same plan, scheduled per case and per topology group.
    unbatched = SweepRunner(workers=1, keep_statistics=True).run(plan)
    batched = SweepRunner(workers=1, keep_statistics=True, batch=True).run(plan)

    # Statistics are bit-identical for every case -- stacked solves are
    # split to the exact column shapes of the unbatched solves.
    for ref, cand in zip(unbatched, batched):
        assert ref.name == cand.name
        np.testing.assert_array_equal(ref.mean, cand.mean)
        np.testing.assert_array_equal(ref.std, cand.std)
    print("statistics bit-identical to the unbatched run")

    # Replicated / deduplicated cases are flagged in the results ...
    reused = [result.name for result in batched if result.reused_factorization]
    print(f"reused factorization for {len(reused)} of {len(plan.cases)} case(s):")
    for name in reused:
        print(f"  {name}")

    # ... and the exported record carries the throughput of the run.
    record = record_from_outcome(batched)
    print(f"batched: {record.config['batched']}")
    print(f"throughput: {record.config['cases_per_second']:.1f} cases/s")

    # Telemetry counts how many cases rode a stacked march.
    profiled = SweepRunner(workers=1, keep_statistics=True, batch=True, telemetry=True).run(plan)
    counters = (profiled.telemetry_summary() or {}).get("counters", {})
    print(f"stacked cases: {counters.get('batched_cases', 0)}")


if __name__ == "__main__":
    main()
