"""Section 5.1 special case: lognormal leakage currents from Vth variation.

The chip is divided into regions, each with its own Gaussian threshold-voltage
germ.  Because only the right-hand side of the MNA system is random, the
Galerkin system decouples: a single LU factorisation of (G + C/h) serves every
chaos coefficient and every time step.  Unlike the prior statistical
approaches the paper cites (which bound the variance), the expansion gives the
moments exactly -- this script prints them and cross-checks against Monte
Carlo.

The prebuilt leakage system is injected into an :class:`repro.Analysis`
session with ``with_system``, after which the ``decoupled`` and
``montecarlo`` engines (and the comparison metrics) run as usual.

Run with:  python examples/leakage_special_case.py [--regions 2] [--vth-sigma 0.03]
"""

import argparse

from repro import (
    Analysis,
    GridSpec,
    LeakageVariationSpec,
    RegionPartition,
    build_leakage_system,
    compare_to_monte_carlo,
    generate_power_grid,
    stamp,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--regions", type=int, default=2, help="number of chip regions")
    parser.add_argument("--vth-sigma", type=float, default=0.03, help="per-region Vth sigma (V)")
    parser.add_argument("--samples", type=int, default=200, help="Monte Carlo samples")
    args = parser.parse_args()

    spec = GridSpec(nx=16, ny=16, num_layers=2, num_blocks=6, pad_spacing=2, seed=9)
    netlist = generate_power_grid(spec)
    stamped = stamp(netlist)

    partition = RegionPartition(nx=spec.nx, ny=spec.ny, region_rows=args.regions, region_cols=1)
    leakage_spec = LeakageVariationSpec(vth_sigma=args.vth_sigma)
    system = build_leakage_system(stamped, partition, leakage_spec)

    session = Analysis.from_netlist(netlist, stamped=stamped).with_system(system)
    session.with_transient(t_stop=3.0e-9, dt=0.2e-9)
    print(f"grid: {netlist.stats()}")
    print(
        f"leakage model: {partition.num_regions} regions, "
        f"lognormal sigma s = {leakage_spec.lognormal_sigma:.3f}"
    )

    opera_view = session.run("decoupled", order=3)
    opera_result = opera_view.raw
    print(f"OPERA (decoupled special case) finished in {opera_view.wall_time:.2f} s")

    worst = int(opera_result.worst_node())
    step = opera_result.peak_time_index(worst)
    field = opera_result.field_at(step).drop_field()
    print()
    print(f"worst node: index {worst} at t = {opera_result.times[step] * 1e9:.2f} ns")
    print(f"  exact mean drop      : {1e3 * field.mean[worst]:.3f} mV")
    print(f"  exact sigma          : {1e3 * field.std[worst]:.4f} mV")
    print(f"  sampled skewness     : {field.skewness()[worst]:.3f} (lognormal tail)")
    print(f"  sampled excess kurt. : {field.kurtosis()[worst]:.3f}")
    p01, p99 = field.percentiles([1, 99])[:, worst]
    print(f"  1%/99% drop percentiles: {1e3 * p01:.3f} / {1e3 * p99:.3f} mV")

    print()
    print(f"running Monte Carlo ({args.samples} samples) for cross-check ...")
    mc_view = session.run("montecarlo", samples=args.samples, seed=3, antithetic=True)
    metrics = compare_to_monte_carlo(opera_result, mc_view.raw)
    print(f"  {metrics}")
    print(f"  speed-up over this Monte Carlo: " f"{mc_view.wall_time / opera_view.wall_time:.0f}x")


if __name__ == "__main__":
    main()
