"""Resumable sweep campaigns: interrupt a sweep, resume it, get identical numbers.

The :mod:`repro.sweep` runner streams every completed case into a results
backend as workers return it.  With the on-disk
:class:`~repro.sweep.ShardedNpzBackend`, shards are flushed atomically while
the campaign runs, so a killed run keeps everything already flushed and
:meth:`~repro.sweep.SweepRunner.resume` executes only the missing cases.

This demo runs one campaign three ways against the same plan:

1. an uninterrupted reference run (in-memory backend),
2. an "interrupted" run -- only half the plan executes into an on-disk
   store, standing in for a campaign killed half-way,
3. a resume of that store, which re-runs only the missing half.

It then shows that the resumed campaign's statistics and its exported
:class:`~repro.sweep.BenchRecord` cases are bit-identical to the reference
(only wall times differ), and that a second resume performs zero solver
calls -- the store doubles as a result cache.

Run with:  PYTHONPATH=src python examples/resumable_sweep.py
"""

import dataclasses
import tempfile
from pathlib import Path

import numpy as np

from repro import ShardedNpzBackend, SweepPlan, SweepRunner, record_from_store
from repro.sim import TransientConfig
from repro.sweep import record_from_outcome


def main() -> None:
    plan = SweepPlan.grid(
        [60, 90],
        engines=("opera", "montecarlo"),
        orders=(2,),
        samples=16,
        transient=TransientConfig(t_stop=1.2e-9, dt=0.2e-9),
        base_seed=7,
    )
    runner = SweepRunner(workers=2, keep_statistics=True)

    # 1. Uninterrupted reference run (default in-memory backend).
    reference = runner.run(plan)
    print(f"reference run: {reference.executed} case(s) executed")

    with tempfile.TemporaryDirectory() as tmp:
        store_dir = Path(tmp) / "campaign-store"

        # 2. "Killed" campaign: only the first half of the plan executes
        #    into the on-disk store.  shard_size=1 flushes every case
        #    immediately, the worst case for an interrupt.
        half = dataclasses.replace(plan, cases=plan.cases[: len(plan.cases) // 2])
        runner.run(half, store=ShardedNpzBackend(store_dir, shard_size=1))
        shards = sorted(store_dir.glob("shard-*.npz"))
        print(f"interrupted after {len(half.cases)} case(s): {len(shards)} shard(s) on disk")

        # 3. Resume: the persisted cases are served from the store, only
        #    the missing ones execute.
        store = ShardedNpzBackend(store_dir, shard_size=1)
        resumed = runner.resume(plan, store)
        print(f"resumed: {resumed.executed} executed, {resumed.reused} from store")

        # The numbers are bit-identical to the uninterrupted run.
        for ref, res in zip(reference, resumed):
            assert ref.name == res.name
            np.testing.assert_array_equal(ref.mean, res.mean)
            np.testing.assert_array_equal(ref.std, res.std)
        print("statistics bit-identical to the uninterrupted run")

        # The store exports the same v1 BenchRecord the regress gate reads;
        # only the timing fields can differ between the two runs.
        def stable(record):
            return [
                {k: v for k, v in case.items() if k not in ("wall_time_s", "speedup_vs_mc")}
                for case in record.cases
            ]

        assert stable(record_from_store(store, plan=plan)) == stable(record_from_outcome(reference))
        print("exported BenchRecord cases bit-identical (timing fields aside)")

        # A fully-populated store resumes with zero solver calls.
        again = runner.resume(plan, ShardedNpzBackend(store_dir, shard_size=1))
        print(f"second resume: {again.executed} executed, {again.reused} from store")
        assert again.executed == 0


if __name__ == "__main__":
    main()
