"""Sweep the process-variation magnitude and the expansion order.

Two questions a power-grid designer asks of a tool like OPERA:

* how fast does the voltage-drop spread grow as the process gets noisier?
  (linearly, to first order -- this sweep shows it), and
* what expansion order do I need?  (order 2 is enough at realistic
  magnitudes; the sweep shows how the order-1/2/3 sigmas converge).

Both sweeps run on a single :class:`repro.Analysis` session:
``with_variation`` swaps the variation model in place, and the order sweep
reuses the session's cached chaos bases and factorisations.

Run with:  python examples/variation_sweep.py
"""

import numpy as np

from repro import (
    Analysis,
    GridSpec,
    VariationSpec,
    three_sigma_spread_percent,
)


def main() -> None:
    spec = GridSpec(nx=16, ny=16, num_layers=2, num_blocks=6, pad_spacing=2, seed=21)
    session = Analysis.from_spec(spec)
    session.with_transient(t_stop=3.0e-9, dt=0.2e-9)
    nominal = session.nominal_transient()
    print(f"grid: {session.netlist.stats()}")
    print(f"nominal worst drop: {1e3 * nominal.worst_drop():.1f} mV "
          f"({100 * nominal.worst_drop() / session.vdd:.1f}% of VDD)")

    # --- sweep 1: variation magnitude --------------------------------------
    print("\nsweep 1: 3-sigma variation magnitude (W/T/Leff scaled together)")
    print("  scale   3sigma(W)%   3sigma(L)%   spread(+/-% of nominal drop)   worst sigma (mV)")
    for scale in (0.25, 0.5, 0.75, 1.0, 1.25):
        variation = VariationSpec(
            sigma_w=scale * 0.20 / 3.0,
            sigma_t=scale * 0.15 / 3.0,
            sigma_l=scale * 0.20 / 3.0,
        )
        session.with_variation(variation)
        result = session.run("opera", order=2)
        spread = three_sigma_spread_percent(result.raw, nominal)
        print(
            f"  {scale:5.2f}   {100 * 3 * variation.sigma_w:9.1f}   "
            f"{100 * 3 * variation.sigma_l:9.1f}   {spread:27.1f}   "
            f"{1e3 * result.raw.std_drop.max():15.3f}"
        )

    # --- sweep 2: expansion order -------------------------------------------
    print("\nsweep 2: expansion order (paper default variation)")
    session.with_variation(VariationSpec.paper_defaults())
    reference = session.run("opera", order=4).raw
    hot = reference.std_drop > 0.25 * reference.std_drop.max()
    print("  order   terms   wall time (s)   avg |sigma error| vs order-4 (%)")
    for order in (1, 2, 3):
        result = session.run("opera", order=order).raw
        error = 100 * np.mean(
            np.abs(result.std_drop - reference.std_drop)[hot] / reference.std_drop[hot]
        )
        print(f"  {order:5d}   {result.basis.size:5d}   {result.wall_time:13.3f}   {error:29.3f}")


if __name__ == "__main__":
    main()
