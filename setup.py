"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
editable installs (``pip install -e .``) work on minimal offline environments
that lack the ``wheel`` package required by the PEP 660 editable-install path.
"""

from setuptools import setup

setup()
