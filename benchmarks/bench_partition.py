"""Monolithic vs partitioned solves: the partition-subsystem benchmark.

Two comparisons on the *largest* benchmark grid (env-scaled via the shared
``OPERA_BENCH_*`` variables, see ``_bench_config.py``):

1. **Raw solver**: factor + solve wall time of the monolithic sparse LU
   (``direct``) against the Schur-complement solver (``schur``) at several
   partition counts, on the nominal conductance matrix.
2. **Engine**: a sweep with the monolithic ``opera`` engine and the
   partitioned ``hierarchical`` engine on the same grids, emitted as a
   :class:`~repro.sweep.BenchRecord` artifact so partitioned wall times are
   tracked (and gateable) exactly like every other case.

Run it directly for a larger study::

    OPERA_BENCH_NODE_COUNTS=2500,10000 PYTHONPATH=src \
    python benchmarks/bench_partition.py --output benchmarks/results/partition_bench.json
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from repro.api import Analysis  # noqa: F401  (registers the schur backend)
from repro.grid.generator import generate_power_grid, spec_for_node_count
from repro.grid.stamping import stamp
from repro.partition import SchurSolver, partition_system
from repro.sim.linear import DirectSolver
from repro.sweep import (
    BenchRecord,
    SweepPlan,
    SweepRunner,
    compare_records,
    record_from_outcome,
)
from repro.sweep.plan import grid_seed_for

from _bench_config import (
    RESULTS_DIR,
    bench_node_counts,
    bench_store,
    bench_transient,
    bench_workers,
)

#: Base seed of the partition bench plan (fixed for reproducibility).
BASE_SEED = 23

#: Partition counts of the raw-solver comparison.
PART_COUNTS = (2, 4, 8)


def time_raw_solvers(nodes: int) -> dict:
    """Factor+solve wall times of direct vs schur on the largest grid."""
    spec = spec_for_node_count(nodes, seed=grid_seed_for(nodes, BASE_SEED))
    stamped = stamp(generate_power_grid(spec))
    conductance = stamped.conductance
    rhs = stamped.rhs(0.0)

    started = time.perf_counter()
    direct = DirectSolver(conductance)
    reference = direct.solve(rhs)
    direct_s = time.perf_counter() - started

    timings = {
        "nodes": int(stamped.num_nodes),
        "direct_factor_solve_s": float(direct_s),
        "schur_factor_solve_s": {},
        "schur_relative_error": {},
        "interface_nodes": {},
    }
    for num_parts in PART_COUNTS:
        partition = partition_system(stamped, num_parts)
        started = time.perf_counter()
        solver = SchurSolver(conductance, partition=partition)
        solution = solver.solve(rhs)
        elapsed = time.perf_counter() - started
        error = float(np.max(np.abs(solution - reference)) / np.max(np.abs(reference)))
        timings["schur_factor_solve_s"][str(num_parts)] = float(elapsed)
        timings["schur_relative_error"][str(num_parts)] = error
        timings["interface_nodes"][str(num_parts)] = int(partition.boundary.size)
    return timings


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=RESULTS_DIR / "partition_bench.json",
        help="where to write the BenchRecord JSON (default: %(default)s)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="gate against this baseline artifact (exit 1 on regression)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=300.0,
        metavar="PCT",
        help="allowed wall-time growth vs the baseline, percent (default %(default)s)",
    )
    parser.add_argument(
        "--partitions",
        type=int,
        default=4,
        metavar="K",
        help="schedule group count of the hierarchical cases (default %(default)s)",
    )
    args = parser.parse_args(argv)

    largest = max(bench_node_counts())
    print(f"raw solver comparison on ~{largest} nodes")
    raw = time_raw_solvers(largest)
    direct_s = raw["direct_factor_solve_s"]
    print(f"  direct   factor+solve {direct_s:8.3f}s")
    for num_parts in PART_COUNTS:
        key = str(num_parts)
        schur_s = raw["schur_factor_solve_s"][key]
        print(
            f"  schur K={num_parts}  factor+solve {schur_s:8.3f}s  "
            f"({raw['interface_nodes'][key]} interface nodes, "
            f"rel err {raw['schur_relative_error'][key]:.2e})"
        )

    plan = SweepPlan.grid(
        bench_node_counts(),
        engines=("opera", "hierarchical"),
        orders=(2,),
        partitions=args.partitions,
        transient=bench_transient(),
        base_seed=BASE_SEED,
    )
    outcome = SweepRunner(workers=bench_workers()).run(plan, store=bench_store("partition"))
    record = record_from_outcome(outcome, config={"suite": "partition", "raw_solver": raw})

    print(f"engine sweep: {len(outcome)} case(s), wall {outcome.wall_time:.2f}s")
    for result in outcome:
        print(f"  {result.name:44s} {result.wall_time:8.3f}s")

    path = record.write(args.output)
    print(f"wrote {path}")

    if args.baseline is not None:
        report = compare_records(
            BenchRecord.load(args.baseline),
            record,
            max_regression_percent=args.max_regression,
            min_seconds=0.5,
        )
        print()
        print(report.format())
        if not report.ok:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
