"""CI smoke sweep: run the sweep runner on tiny grids and emit an artifact.

This is the entry point of the ``bench-smoke`` CI job.  Scale comes from the
``OPERA_BENCH_*`` environment variables shared by every bench module (see
``_bench_config.py``); the job sets them to tiny values, runs this script,
uploads the emitted :class:`~repro.sweep.BenchRecord` JSON as a workflow
artifact, and gates it against the committed baseline
``benchmarks/results/smoke_baseline.json``.

The CI job runs in *store mode*: a first invocation with ``--store DIR
--interrupt N`` executes only the first ``N`` cases into a sharded on-disk
results store and exits (a stand-in for a killed campaign), and a second
invocation with the same ``--store`` resumes -- reusing the persisted
cases, executing the rest, and gating the record exported from the store
(:func:`repro.sweep.record_from_store`) against the committed baseline.

Regenerate the baseline after an intentional perf change with the same
environment the CI job uses::

    OPERA_BENCH_NODE_COUNTS=120,250 OPERA_BENCH_MC_SAMPLES=16 \
    OPERA_BENCH_STEPS=6 OPERA_BENCH_WORKERS=2 PYTHONPATH=src \
    python benchmarks/smoke_sweep.py --output benchmarks/results/smoke_baseline.json
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.sweep import (
    BenchRecord,
    ShardedNpzBackend,
    SweepCase,
    SweepPlan,
    SweepRunner,
    check_throughput,
    compare_records,
    record_from_outcome,
    record_from_store,
)
from repro.sweep.plan import grid_seed_for

from _bench_config import (
    RESULTS_DIR,
    bench_mc_samples,
    bench_node_counts,
    bench_transient,
    bench_workers,
)

#: Base seed of the smoke plan; fixed so baseline and current runs match.
BASE_SEED = 11

#: Shard size of the smoke store: tiny, so even the interrupted first half
#: of the CI campaign flushes several shards and the resume genuinely reads
#: multi-shard state back.
STORE_SHARD_SIZE = 2


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=RESULTS_DIR / "smoke_sweep.json",
        help="where to write the BenchRecord JSON (default: %(default)s)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="gate against this baseline artifact (exit 1 on regression)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=300.0,
        metavar="PCT",
        help="allowed wall-time growth vs the baseline, percent "
        "(generous: CI runners vary; default %(default)s)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=0.5,
        metavar="S",
        help="clamp wall times up to this floor before comparing; generous "
        "because baseline and current run on different hardware "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--batch",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="run the sweep through the topology-batched scheduler "
        "(results are bit-identical to the unbatched path)",
    )
    parser.add_argument(
        "--min-throughput",
        type=float,
        default=None,
        metavar="CPS",
        help="require the run to sustain this many cases/second "
        "(clamped: runs at most --throughput-min-seconds long always pass)",
    )
    parser.add_argument(
        "--throughput-min-seconds",
        type=float,
        default=2.0,
        metavar="S",
        help="total wall time below which the throughput floor is waived "
        "(default %(default)s; CI smoke grids are tiny and noisy)",
    )
    parser.add_argument(
        "--store",
        type=Path,
        default=None,
        metavar="DIR",
        help="stream completed cases into a sharded .npz results store; "
        "cases already present are reused instead of re-run",
    )
    parser.add_argument(
        "--interrupt",
        type=int,
        default=None,
        metavar="N",
        help="run only the first N plan cases into the store and exit "
        "(simulates a killed campaign; requires --store)",
    )
    args = parser.parse_args(argv)
    if args.interrupt is not None and args.store is None:
        parser.error("--interrupt requires --store")

    plan = SweepPlan.grid(
        bench_node_counts(),
        # pce-regression rides the same grid: one non-intrusive case per
        # grid, chunked over the same worker count as Monte Carlo.  Its
        # cases are appended by identity, so pre-existing case seeds are
        # untouched (append-only identity rule).
        engines=("opera", "montecarlo", "hierarchical", "pce-regression"),
        orders=(2,),
        samples=bench_mc_samples(),
        mc_workers=bench_workers(),
        # Small chunks so even the tiny CI sample counts split into several
        # chunks and the job genuinely exercises the process-pool path.
        mc_chunk_size=8,
        # One partitioned (hierarchical) case per grid so the smoke job
        # exercises the Schur path; K=2 keeps the tiny grids splittable.
        partitions=2,
        transient=bench_transient(),
        base_seed=BASE_SEED,
    )
    # One matrix-free case per grid (the opera engine on the lazy
    # Kronecker-sum operators with the mean-block-cg backend), one
    # backward-euler case per grid (the opera engine through the shared
    # repro.stepping core on the first-order scheme), and one macromodel
    # case per grid (the mor engine: PRIMA reduction, reduced block march,
    # back-substituted statistics), so the smoke job exercises -- and the
    # gate tracks -- the operator path, the scheme plumbing and the
    # reduction stack.  Hand-built appended cases derive their seeds via
    # the append-only identity, so the grid cases' seeds are unchanged.
    def extra_case(nodes: int, **fields) -> SweepCase:
        fields.setdefault("engine", "opera")
        return SweepCase(
            nodes=int(nodes),
            grid_seed=grid_seed_for(nodes, BASE_SEED),
            order=2,
            **fields,
        ).with_derived_seed(BASE_SEED)

    extras = tuple(
        extra_case(nodes, **fields)
        for nodes in bench_node_counts()
        for fields in (
            {"solver": "mean-block-cg"},
            {"scheme": "backward-euler"},
            {"engine": "mor", "mor_order": 2},
        )
    )
    plan = dataclasses.replace(plan, cases=plan.cases + extras)

    if args.interrupt is not None:
        # Interrupted campaign: execute only a prefix of the plan into the
        # store, then stop -- the next (resuming) invocation picks up the
        # remaining cases from the flushed shards.
        truncated = dataclasses.replace(plan, cases=plan.cases[: args.interrupt])
        store = ShardedNpzBackend(args.store, shard_size=STORE_SHARD_SIZE)
        outcome = SweepRunner(workers=bench_workers(), batch=args.batch).run(
            truncated, store=store
        )
        print(
            f"smoke sweep interrupted after {outcome.executed} of "
            f"{len(plan.cases)} case(s); store at {args.store}"
        )
        return 0

    store = None
    if args.store is not None:
        store = ShardedNpzBackend(args.store, shard_size=STORE_SHARD_SIZE)
    outcome = SweepRunner(workers=bench_workers(), batch=args.batch).run(plan, store=store)
    if store is not None:
        # Exercise the store's export view: the artifact the gate consumes
        # is rebuilt purely from the persisted shards.
        record = record_from_store(store, plan=plan, config={"suite": "smoke"})
    else:
        record = record_from_outcome(outcome, config={"suite": "smoke"})

    speedups = outcome.speedups()
    reused = f" ({outcome.reused} from store)" if outcome.reused else ""
    print(f"smoke sweep: {len(outcome)} case(s), wall {outcome.wall_time:.2f}s{reused}")
    for result in outcome:
        speed = speedups.get(result.name)
        suffix = f"  speedup vs MC {speed:.2f}x" if speed is not None else ""
        print(f"  {result.name:40s} {result.wall_time:8.3f}s{suffix}")

    path = record.write(args.output)
    print(f"wrote {path}")

    if args.min_throughput is not None:
        # Gate throughput on the live outcome (store exports have no sweep
        # wall time), with the clamped floor: tiny CI runs pass vacuously.
        live = record_from_outcome(outcome)
        throughput = check_throughput(
            live, args.min_throughput, min_seconds=args.throughput_min_seconds
        )
        print(throughput.format())
        if not throughput.ok:
            return 1

    if args.baseline is not None:
        report = compare_records(
            BenchRecord.load(args.baseline),
            record,
            max_regression_percent=args.max_regression,
            min_seconds=args.min_seconds,
        )
        print()
        print(report.format())
        if not report.ok:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
