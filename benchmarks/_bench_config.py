"""Environment-driven configuration shared by all benchmark modules.

The benchmark harness is scaled down by default so the full reproduction runs
in minutes; set these environment variables for larger runs:

``OPERA_BENCH_NODE_COUNTS``  comma-separated grid sizes  (default ``600,1200,2500``)
``OPERA_BENCH_MC_SAMPLES``   Monte Carlo samples          (default ``60``; paper: 1000)
``OPERA_BENCH_STEPS``        transient steps              (default ``12``)
``OPERA_BENCH_WORKERS``      sweep worker processes       (default ``1``)
``OPERA_BENCH_STORE``        results-store directory      (default: unset -- in-memory;
                             set to make the sweep-driven benches resumable)

The same variables scale the CI ``bench-smoke`` job (see
``benchmarks/smoke_sweep.py``), which runs the sweep on tiny grids.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List

from repro.sim import TransientConfig

RESULTS_DIR = Path(__file__).parent / "results"


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


def bench_node_counts() -> List[int]:
    """Approximate node counts of the benchmark grids."""
    raw = os.environ.get("OPERA_BENCH_NODE_COUNTS", "600,1200,2500")
    counts = []
    for token in raw.split(","):
        token = token.strip()
        if token:
            counts.append(int(token))
    return counts or [600, 1200, 2500]


def bench_mc_samples() -> int:
    """Monte Carlo sample count used by the reproduction benches."""
    return max(_env_int("OPERA_BENCH_MC_SAMPLES", 60), 4)


def bench_num_steps() -> int:
    """Number of fixed transient steps."""
    return max(_env_int("OPERA_BENCH_STEPS", 12), 4)


def bench_workers() -> int:
    """Worker processes used by the sweep-driven benches."""
    return max(_env_int("OPERA_BENCH_WORKERS", 1), 1)


def bench_transient() -> TransientConfig:
    """The shared transient configuration of all benches."""
    steps = bench_num_steps()
    dt = 0.2e-9
    return TransientConfig(t_stop=steps * dt, dt=dt)


def bench_store(suite: str):
    """A persistent sweep results backend for ``suite``, or ``None``.

    Set ``OPERA_BENCH_STORE`` to a directory to make the sweep-driven
    benches resumable: each suite streams its completed cases into
    ``<dir>/<suite>`` (a :class:`repro.sweep.ShardedNpzBackend`) and later
    runs with the same environment reuse them instead of re-solving --
    including runs killed half-way.  Reused cases keep their stored wall
    times, so delete the store before a timing-focused re-run.
    """
    root = os.environ.get("OPERA_BENCH_STORE")
    if not root:
        return None
    from repro.sweep import ShardedNpzBackend

    return ShardedNpzBackend(Path(root) / suite)


def write_result(path: Path, name: str, text: str) -> Path:
    """Write a benchmark artifact and return its path."""
    path.mkdir(parents=True, exist_ok=True)
    out = path / name
    out.write_text(text, encoding="utf-8")
    return out
