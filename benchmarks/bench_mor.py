"""Macromodel (``mor``) engine vs exact ``hierarchical``: the MOR benchmark.

Three measurements, scaled by the shared ``OPERA_BENCH_*`` environment
variables (see ``_bench_config.py``):

1. **Engine comparison** on every bench grid plus one large grid
   (``OPERA_MOR_LARGE_NODES``, default ``10x`` the largest bench grid):
   the ``hierarchical`` wall time vs the ``mor`` engine cold (macromodels
   built) and warm (macromodels reused from the session cache), with the
   mean/std agreement of the two engines recorded per grid.  The issue's
   acceptance gates -- warm speedup ``> 2x`` on the large grid and mean/std
   within ``1e-3`` relative everywhere -- are checked here and fail the run.
2. **Corner sweep** (3 corners of the largest grid through the sweep
   runner): sibling corner sessions share the macromodel cache exactly like
   they share factorizations, so corners after the first must report
   ``macromodels_reused > 0`` in their telemetry counters.
3. The sweep cases land in the :class:`~repro.sweep.BenchRecord` schema as
   ``BENCH_mor.json`` at the repo root, with the engine comparison and the
   reuse evidence in the ``config`` block.

The committed artifact was produced with::

    OPERA_MOR_LARGE_NODES=25700 PYTHONPATH=src \
    python benchmarks/bench_mor.py --output BENCH_mor.json
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from repro.api import Analysis
from repro.sweep import (
    BenchRecord,
    SweepCase,
    SweepPlan,
    SweepRunner,
    compare_records,
    record_from_outcome,
)
from repro.sweep.plan import grid_seed_for

from _bench_config import bench_node_counts, bench_store, bench_transient, bench_workers

#: Base seed of the mor bench plan (fixed for reproducibility).
BASE_SEED = 47

#: Chaos order of every comparison (the paper's default).
ORDER = 2

#: Corners of the macromodel-reuse sweep.
CORNERS = ("paper", "tight", "wide")

#: Accuracy gate: mor mean/std within this relative error of hierarchical.
ACCURACY_GATE = 1e-3

#: Wall-time gate on the large grid: warm mor must beat hierarchical by this.
SPEEDUP_GATE = 2.0

#: Perf gates only apply to grids at least this large (CI runs tiny grids).
GATED_NODES = 10_000


def large_node_count() -> int:
    """The large-grid size: env override or ``10x`` the largest bench grid."""
    raw = os.environ.get("OPERA_MOR_LARGE_NODES", "").strip()
    if raw:
        return int(raw)
    return 10 * max(bench_node_counts())


def time_engines(nodes: int) -> dict:
    """hierarchical vs mor (cold + warm) on one grid, with accuracy."""
    session = Analysis.from_spec(nodes, seed=grid_seed_for(nodes, BASE_SEED))
    session.with_transient(bench_transient())
    hierarchical = session.run("hierarchical", order=ORDER)
    cold = session.run("mor", order=ORDER)
    warm = session.run("mor", order=ORDER)

    mean_scale = float(np.max(np.abs(hierarchical.mean())))
    std_scale = float(np.max(np.abs(hierarchical.std())))
    return {
        "nodes": int(session.num_nodes),
        "order": ORDER,
        "hierarchical_s": float(hierarchical.wall_time),
        "mor_cold_s": float(cold.wall_time),
        "mor_warm_s": float(warm.wall_time),
        "speedup_cold": float(hierarchical.wall_time / cold.wall_time),
        "speedup_warm": float(hierarchical.wall_time / warm.wall_time),
        "mean_relative_error": float(
            np.max(np.abs(warm.mean() - hierarchical.mean())) / mean_scale
        ),
        "std_relative_error": float(
            np.max(np.abs(warm.std() - hierarchical.std())) / max(std_scale, 1e-300)
        ),
        "mor_stats": dict(cold.mor_stats),
        "warm_mor_stats": dict(warm.mor_stats),
    }


def corner_sweep_plan(nodes: int) -> SweepPlan:
    """Three corners of one topology through the ``mor`` engine."""
    grid_seed = grid_seed_for(nodes, BASE_SEED)
    cases = tuple(
        SweepCase(
            engine="mor",
            nodes=int(nodes),
            grid_seed=grid_seed,
            order=ORDER,
            corner=corner,
        ).with_derived_seed(BASE_SEED)
        for corner in CORNERS
    )
    return SweepPlan(cases=cases, transient=bench_transient(), base_seed=BASE_SEED)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_mor.json",
        help="where to write the BenchRecord JSON (default: %(default)s)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="gate against this baseline artifact (exit 1 on regression)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=300.0,
        metavar="PCT",
        help="allowed wall-time growth vs the baseline, percent (default %(default)s)",
    )
    args = parser.parse_args(argv)

    failures = []
    comparisons = []
    for nodes in [*bench_node_counts(), large_node_count()]:
        print(f"engine comparison on ~{nodes} nodes, order {ORDER}")
        timing = time_engines(nodes)
        comparisons.append(timing)
        print(
            f"  hierarchical {timing['hierarchical_s']:8.3f}s   "
            f"mor cold {timing['mor_cold_s']:8.3f}s   "
            f"warm {timing['mor_warm_s']:8.3f}s   "
            f"speedup {timing['speedup_cold']:.2f}x/{timing['speedup_warm']:.2f}x warm"
        )
        print(
            f"  reduced {timing['mor_stats']['reduced_size']} of "
            f"{timing['mor_stats']['full_size']}   "
            f"mean err {timing['mean_relative_error']:.2e}   "
            f"std err {timing['std_relative_error']:.2e}"
        )
        if timing["mean_relative_error"] > ACCURACY_GATE:
            failures.append(f"mean error gate failed on {timing['nodes']} nodes")
        if timing["std_relative_error"] > ACCURACY_GATE:
            failures.append(f"std error gate failed on {timing['nodes']} nodes")
        if timing["warm_mor_stats"]["macromodels_reused"] == 0:
            failures.append(f"warm run rebuilt macromodels on {timing['nodes']} nodes")
        if timing["nodes"] >= GATED_NODES and timing["speedup_warm"] < SPEEDUP_GATE:
            failures.append(
                f"warm speedup {timing['speedup_warm']:.2f}x < {SPEEDUP_GATE}x "
                f"on {timing['nodes']} nodes"
            )

    sweep_nodes = large_node_count()
    plan = corner_sweep_plan(sweep_nodes)
    outcome = SweepRunner(workers=bench_workers(), telemetry=True).run(
        plan, store=bench_store("mor")
    )
    built = reused = 0
    for result in outcome:
        counters = (result.telemetry or {}).get("counters", {})
        built += int(counters.get("macromodels_built", 0))
        reused += int(counters.get("macromodels_reused", 0))
        print(f"  {result.name:40s} {result.wall_time:8.3f}s")
    print(
        f"corner sweep ({len(outcome)} corners): "
        f"{built} macromodel(s) built, {reused} reused"
    )
    if reused == 0:
        failures.append("corner sweep reused no macromodels")

    record = record_from_outcome(
        outcome,
        config={
            "suite": "mor",
            "order": ORDER,
            "engine_comparison": comparisons,
            "corner_sweep": {
                "nodes": int(sweep_nodes),
                "corners": list(CORNERS),
                "macromodels_built": built,
                "macromodels_reused": reused,
            },
            "gates": {
                "accuracy_relative": ACCURACY_GATE,
                "warm_speedup_min": SPEEDUP_GATE,
                "gated_nodes_min": GATED_NODES,
            },
        },
    )
    path = record.write(args.output)
    print(f"wrote {path}")

    if args.baseline is not None:
        report = compare_records(
            BenchRecord.load(args.baseline),
            record,
            max_regression_percent=args.max_regression,
            min_seconds=0.5,
        )
        print()
        print(report.format())
        if not report.ok:
            return 1

    if failures:
        for failure in failures:
            print(f"GATE FAILED: {failure}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
