"""Figures 1 and 2 reproduction: voltage-drop distributions, OPERA vs MC.

The paper plots, for the 19 181-node grid, the histogram of the voltage drop
(as % of VDD) at two selected nodes, obtained from Monte Carlo and from the
OPERA expansion; the curves coincide.  This harness does the same on the
largest benchmark grid: the node with the worst drop (Figure 1) and a second,
moderately loaded node (Figure 2).  The histogram series and an ASCII
rendering are written to ``benchmarks/results/``.

Both engine runs go through the :mod:`repro.sweep` runner (with
``keep_raw=True``, since the distribution comparison samples the chaos
expansion and reads the recorded Monte Carlo waveforms): first the OPERA
case, whose result selects the two nodes, then the Monte Carlo case with
``store_nodes`` pinned to them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import ascii_histogram, drop_distribution_comparison
from repro.sweep import SweepCase, SweepPlan, SweepRunner, grid_seed_for

from _bench_config import (
    bench_mc_samples,
    bench_node_counts,
    bench_transient,
    bench_workers,
    write_result,
)


def _figure_text(comparison, label: str) -> str:
    lines = [
        f"{label}: voltage drop distribution (% of VDD) at node index {comparison.node}",
        "bin_center_percent_vdd, opera_percent_occurrence, monte_carlo_percent_occurrence",
    ]
    for center, opera_value, mc_value in zip(
        comparison.bin_centers_percent_vdd,
        comparison.opera_percent_occurrence,
        comparison.monte_carlo_percent_occurrence,
    ):
        lines.append(f"{center:.4f}, {opera_value:.3f}, {mc_value:.3f}")
    lines.append("")
    lines.append(ascii_histogram(comparison))
    return "\n".join(lines) + "\n"


@pytest.fixture(scope="module")
def figure_setup():
    """OPERA and Monte Carlo results with recorded waveforms at two nodes."""
    target = max(bench_node_counts())
    transient = bench_transient()
    grid_seed = grid_seed_for(target)
    # retain_sessions: the MC stage reuses the grid the OPERA stage built.
    runner = SweepRunner(workers=bench_workers(), keep_raw=True, retain_sessions=True)

    opera_case = SweepCase(engine="opera", nodes=target, grid_seed=grid_seed, order=2)
    opera_result = runner.run(SweepPlan(cases=(opera_case,), transient=transient)).results[0].raw

    worst = int(opera_result.worst_node())
    # Figure 2 uses a second node: the one with the median peak drop among
    # the meaningfully loaded nodes.
    peaks = opera_result.peak_mean_drop_per_node()
    loaded = np.where(peaks > 0.5 * peaks.max())[0]
    second = int(loaded[np.argsort(peaks[loaded])[len(loaded) // 2]])
    if second == worst and loaded.size > 1:
        second = int(loaded[0])

    mc_case = SweepCase(
        engine="montecarlo",
        nodes=target,
        grid_seed=grid_seed,
        samples=bench_mc_samples() + bench_mc_samples() % 2,
        antithetic=True,
        store_nodes=(worst, second),
        workers=bench_workers(),
        seed=13,
    )
    mc_result = runner.run(SweepPlan(cases=(mc_case,), transient=transient)).results[0].raw
    return opera_result, mc_result, worst, second


def test_figure1_distribution_at_worst_node(benchmark, figure_setup, results_dir):
    opera_result, mc_result, worst, _ = figure_setup

    comparison = benchmark.pedantic(
        drop_distribution_comparison,
        args=(opera_result, mc_result),
        kwargs={"node": worst, "bins": 24, "num_opera_samples": 20000},
        rounds=1,
        iterations=1,
    )
    write_result(results_dir, "figure1.txt", _figure_text(comparison, "Figure 1"))

    assert comparison.opera_mean_percent_vdd == pytest.approx(
        comparison.monte_carlo_mean_percent_vdd, rel=0.05
    )
    assert comparison.opera_sigma_percent_vdd == pytest.approx(
        comparison.monte_carlo_sigma_percent_vdd, rel=0.45
    )
    assert comparison.histogram_distance() < 40.0


def test_figure2_distribution_at_second_node(benchmark, figure_setup, results_dir):
    opera_result, mc_result, _, second = figure_setup

    comparison = benchmark.pedantic(
        drop_distribution_comparison,
        args=(opera_result, mc_result),
        kwargs={"node": second, "bins": 24, "num_opera_samples": 20000},
        rounds=1,
        iterations=1,
    )
    write_result(results_dir, "figure2.txt", _figure_text(comparison, "Figure 2"))

    assert comparison.opera_mean_percent_vdd == pytest.approx(
        comparison.monte_carlo_mean_percent_vdd, rel=0.05
    )
    assert comparison.histogram_distance() < 40.0
