"""Ablation: chaos expansion order and germ-count trade-offs.

The paper states that order-2 or order-3 expansions are sufficient for
realistic variation magnitudes and that the augmented system size grows as
O(r^p).  This bench quantifies both statements on a mid-size benchmark grid:

* accuracy of order 1/2/3 relative to an order-4 reference,
* wall time of each order (the cost of the extra accuracy),
* cost of the combined two-germ model (xi_G, xi_L) versus the separate
  three-germ model (xi_W, xi_T, xi_L) that spans a larger basis.

The order sweep runs on the shared :class:`repro.api.Analysis` session from
``grid_cache``, so each order's basis/Galerkin assembly is built once and
repeated runs hit the session cache (the cache counters are written to the
results file as evidence).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Analysis
from repro.variation import VariationSpec, build_stochastic_system

from _bench_config import bench_node_counts, bench_transient, write_result

ORDERS = (1, 2, 3)


@pytest.fixture(scope="module")
def ablation_session(grid_cache):
    target = sorted(bench_node_counts())[0]
    session = grid_cache.session(target)
    session.with_transient(bench_transient())
    return session


@pytest.fixture(scope="module")
def order_reference(ablation_session):
    """Order-4 result used as the truncation-error reference."""
    return ablation_session.run("opera", order=4).raw


@pytest.fixture(scope="module")
def order_results(ablation_session):
    return {}


@pytest.mark.parametrize("order", ORDERS)
def test_expansion_order_cost_and_accuracy(
    benchmark, ablation_session, order_reference, order_results, results_dir, order
):
    view = benchmark.pedantic(
        ablation_session.run,
        kwargs=dict(engine="opera", order=order),
        rounds=1,
        iterations=1,
    )
    result = view.raw

    hot = order_reference.std_drop > 0.25 * order_reference.std_drop.max()
    sigma_error = (
        100.0
        * np.abs(result.std_drop - order_reference.std_drop)[hot]
        / order_reference.std_drop[hot]
    )
    mean_error = (
        100.0
        * np.max(np.abs(result.mean_voltage - order_reference.mean_voltage))
        / ablation_session.vdd
    )
    order_results[order] = (
        result.basis.size,
        result.wall_time,
        float(np.mean(sigma_error)),
        float(np.max(sigma_error)),
        mean_error,
    )

    # Order 2 must already be within a couple of percent of the reference.
    if order >= 2:
        assert np.mean(sigma_error) < 2.0

    lines = [
        "Ablation: expansion order (reference = order 4)",
        "order  terms  wall_time_s  avg_sigma_err_%  max_sigma_err_%  mean_err_%vdd",
    ]
    for key in sorted(order_results):
        size, wall, avg_err, max_err, mean_err = order_results[key]
        lines.append(
            f"{key:>5}  {size:>5}  {wall:>11.3f}  {avg_err:>15.3f}  {max_err:>15.3f}  {mean_err:>13.5f}"
        )
    lines.append("")
    lines.append(f"session caches after the sweep: {ablation_session.cache_info()}")
    write_result(results_dir, "ablation_order.txt", "\n".join(lines) + "\n")


def test_combined_versus_separate_germs(benchmark, grid_cache, results_dir):
    """Eq. (14) ablation: 2-germ combined model vs 3-germ separate model."""
    target = sorted(bench_node_counts())[0]
    _, netlist, stamped, _ = grid_cache.get(target)
    transient = bench_transient()

    combined_system = build_stochastic_system(stamped, VariationSpec(combine_wt=True))
    separate_system = build_stochastic_system(stamped, VariationSpec(combine_wt=False))
    session = Analysis.from_netlist(netlist, stamped=stamped).with_transient(transient)

    session.with_system(combined_system)
    combined = benchmark.pedantic(
        session.run, kwargs=dict(engine="opera", order=2), rounds=1, iterations=1
    ).raw

    session.with_system(separate_system)
    separate = session.run("opera", order=2).raw

    hot = separate.std_drop > 0.25 * separate.std_drop.max()
    sigma_gap = np.abs(combined.std_drop - separate.std_drop)[hot] / separate.std_drop[hot]
    assert np.max(sigma_gap) < 0.03
    assert combined.basis.size < separate.basis.size

    text = (
        "Ablation: combined xi_G (2 germs) vs separate xi_W, xi_T (3 germs), order 2\n"
        f"combined terms = {combined.basis.size}, wall time = {combined.wall_time:.3f} s\n"
        f"separate terms = {separate.basis.size}, wall time = {separate.wall_time:.3f} s\n"
        f"max relative sigma difference on loaded nodes = {100 * np.max(sigma_gap):.2f} %\n"
    )
    write_result(results_dir, "ablation_germs.txt", text)
