"""Section 5.1 special case: RHS-only (leakage) variation.

The paper shows that when only the drain currents vary, the Galerkin system
decouples into independent solves that share a single LU factorisation
(Eq. (27)).  This bench drives both paths through the engine registry:

* times the ``decoupled`` engine and the ``opera`` engine with
  ``force_coupled=True`` on the same leakage-variation session and checks
  they produce identical statistics -- the decoupled path must also be
  substantially faster;
* times the ``montecarlo`` engine for the speed-up figure;
* records the exact moments the special case produces (the improvement the
  paper claims over the variance *bounds* of prior work).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import compare_to_monte_carlo
from repro.api import Analysis
from repro.variation import LeakageVariationSpec, RegionPartition, build_leakage_system

from _bench_config import bench_mc_samples, bench_node_counts, bench_transient, write_result


@pytest.fixture(scope="module")
def leakage_session(grid_cache):
    target = sorted(bench_node_counts())[len(bench_node_counts()) // 2]
    spec, netlist, stamped, _ = grid_cache.get(target)
    partition = RegionPartition(nx=spec.nx, ny=spec.ny, region_rows=2, region_cols=2)
    system = build_leakage_system(stamped, partition, LeakageVariationSpec(vth_sigma=0.03))
    session = Analysis.from_netlist(netlist, stamped=stamped).with_system(system)
    session.with_transient(bench_transient())
    return session


def test_decoupled_solver_speed(benchmark, leakage_session, results_dir):
    """Time the decoupled special-case path (single factorisation)."""
    decoupled = benchmark.pedantic(
        leakage_session.run,
        kwargs=dict(engine="decoupled", order=2),
        rounds=1,
        iterations=1,
    ).raw

    coupled = leakage_session.run("opera", order=2, force_coupled=True).raw
    np.testing.assert_allclose(decoupled.mean_voltage, coupled.mean_voltage, atol=1e-10)
    np.testing.assert_allclose(decoupled.std_drop, coupled.std_drop, atol=1e-12)
    assert decoupled.wall_time < coupled.wall_time

    text = (
        "Section 5.1 special case (RHS-only leakage variation)\n"
        f"grid nodes                 : {leakage_session.num_nodes}\n"
        f"chaos terms (order 2, r=4) : {decoupled.basis.size}\n"
        f"decoupled wall time  (s)   : {decoupled.wall_time:.3f}\n"
        f"force-coupled wall time (s): {coupled.wall_time:.3f}\n"
        f"decoupled speed-up         : {coupled.wall_time / decoupled.wall_time:.1f}x\n"
        f"max |mean difference| (V)  : {np.max(np.abs(decoupled.mean_voltage - coupled.mean_voltage)):.2e}\n"
        f"max |sigma difference| (V) : {np.max(np.abs(decoupled.std_drop - coupled.std_drop)):.2e}\n"
    )
    write_result(results_dir, "special_case.txt", text)


def test_special_case_accuracy_vs_monte_carlo(benchmark, leakage_session, results_dir):
    """Exact moments from the decoupled path vs the Monte Carlo reference."""
    opera_result = benchmark.pedantic(
        leakage_session.run,
        kwargs=dict(engine="opera", order=3),
        rounds=1,
        iterations=1,
    ).raw
    mc_result = leakage_session.run(
        "montecarlo",
        samples=bench_mc_samples(),
        seed=37,
        antithetic=True,
    ).raw
    metrics = compare_to_monte_carlo(opera_result, mc_result)
    assert metrics.average_mean_error_percent < 2.0

    text = (
        "Special case accuracy against Monte Carlo "
        f"({mc_result.num_samples} samples)\n{metrics}\n"
        f"OPERA wall time (s): {opera_result.wall_time:.3f}\n"
        f"MC wall time (s)   : {mc_result.wall_time:.3f}\n"
        f"speed-up           : {mc_result.wall_time / opera_result.wall_time:.1f}x\n"
    )
    write_result(results_dir, "special_case_accuracy.txt", text)
