"""Micro-benchmarks of the building blocks (implementation-notes section).

The paper's implementation discussion attributes most of the cost to the
augmented-system solves and points at sparse solvers and model order
reduction as the levers.  These benches time the individual components so a
user can see where the milliseconds go on their machine:

* grid synthesis and MNA stamping,
* Galerkin assembly of the augmented matrices,
* one factorise+solve of the augmented system with each linear solver,
* nominal transient vs OPERA transient (the per-analysis overhead factor),
* PRIMA reduction of the nominal grid.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.grid import generate_power_grid, spec_for_node_count, stamp
from repro.mor import prima_reduce
from repro.opera import build_basis, build_galerkin_system
from repro.sim import make_solver, solver_names, transient_analysis

from _bench_config import bench_node_counts, bench_transient, write_result


@pytest.fixture(scope="module")
def component_grid(grid_cache):
    target = sorted(bench_node_counts())[0]
    return grid_cache.get(target)


def test_grid_generation(benchmark):
    spec = spec_for_node_count(sorted(bench_node_counts())[0], seed=3)
    netlist = benchmark(generate_power_grid, spec)
    assert netlist.num_nodes > 0


def test_mna_stamping(benchmark, component_grid):
    _, netlist, _, _ = component_grid
    stamped = benchmark(stamp, netlist)
    assert stamped.conductance.nnz > 0


def test_galerkin_assembly(benchmark, component_grid):
    _, _, _, system = component_grid
    basis = build_basis(system, order=2)

    def assemble():
        return build_galerkin_system(system, basis)

    galerkin = benchmark(assemble)
    assert galerkin.conductance.shape[0] == basis.size * system.num_nodes


@pytest.mark.parametrize("method", solver_names())
def test_augmented_solve_by_method(benchmark, component_grid, results_dir, method):
    """Factorise/precondition + one solve of the augmented conductance system.

    Parametrised over the solver registry, so backends added with
    ``register_solver`` are picked up automatically.
    """
    _, _, _, system = component_grid
    basis = build_basis(system, order=2)
    galerkin = build_galerkin_system(system, basis)
    rhs = galerkin.rhs(0.0)

    def factor_and_solve():
        solver = make_solver(galerkin.conductance, method=method)
        return solver.solve(rhs)

    solution = benchmark(factor_and_solve)
    reference = make_solver(galerkin.conductance, method="direct").solve(rhs)
    np.testing.assert_allclose(solution, reference, rtol=1e-5, atol=1e-8)


def test_nominal_vs_opera_overhead(benchmark, component_grid, results_dir):
    """How much more expensive is the order-2 OPERA run than one nominal run?

    The augmented system is 6x larger, so a factor of roughly 6-30x is
    expected -- far below the ~1000x of a 1000-sample Monte Carlo.
    """
    from repro.api import Analysis

    _, netlist, stamped, system = component_grid
    transient = bench_transient()
    session = (
        Analysis.from_netlist(netlist, stamped=stamped)
        .with_system(system)
        .with_transient(transient)
    )

    opera_view = benchmark.pedantic(
        session.run, kwargs=dict(engine="opera", order=2), rounds=1, iterations=1
    )
    import time

    started = time.perf_counter()
    transient_analysis(stamped, transient)
    nominal_seconds = time.perf_counter() - started

    overhead = (opera_view.wall_time or 0.0) / max(nominal_seconds, 1e-9)
    text = (
        "OPERA overhead relative to one nominal transient (order 2, 2 germs)\n"
        f"nominal transient (s): {nominal_seconds:.3f}\n"
        f"OPERA transient (s)  : {opera_view.wall_time:.3f}\n"
        f"overhead factor      : {overhead:.1f}x "
        "(a 1000-sample Monte Carlo costs ~1000x)\n"
    )
    write_result(results_dir, "opera_overhead.txt", text)
    assert overhead < 200.0


def test_prima_reduction(benchmark, component_grid):
    _, _, stamped, _ = component_grid
    ports = np.unique(np.concatenate([stamped.source_nodes[:8], stamped.pad_nodes[:4]]))
    model = benchmark(prima_reduce, stamped.conductance, stamped.capacitance, ports, 2)
    assert model.order <= 2 * ports.size
