"""Sample-budget sweep of the non-intrusive ``pce-regression`` engine.

The regression engine is the first whose accuracy/cost trade-off is driven
by a *sample count* rather than an expansion order, so this bench answers
the two questions that matter for it:

1. **Convergence**: on the smallest bench grid, how do the fitted
   coefficients (vs the intrusive ``opera`` projection at the same order)
   and the mean/std statistics converge as the sample budget grows past the
   classical 2x-oversampling point?
2. **Versus Monte Carlo at equal budget**: at every budget the same germ
   count feeds a plain Monte Carlo sweep; regression PCE should squeeze far
   more moment accuracy out of the same solves (it fits a global polynomial
   instead of averaging).

Both studies land in the ``config`` block of a
:class:`~repro.sweep.BenchRecord`; the record's *cases* are a paired
``pce-regression`` vs ``montecarlo`` sweep over every bench grid at the
shared bench sample count, so regression wall times are tracked in the same
schema as every other perf artifact.  Scaled by the usual ``OPERA_BENCH_*``
environment variables; run a larger study with::

    OPERA_BENCH_NODE_COUNTS=600,2500 OPERA_BENCH_MC_SAMPLES=200 PYTHONPATH=src \
    python benchmarks/bench_regression.py --output BENCH_regression.json
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from repro.api import Analysis
from repro.sweep import (
    BenchRecord,
    SweepCase,
    SweepPlan,
    SweepRunner,
    compare_records,
    record_from_outcome,
)
from repro.sweep.plan import grid_seed_for

from _bench_config import (
    bench_mc_samples,
    bench_node_counts,
    bench_store,
    bench_transient,
    bench_workers,
)

#: Base seed of the regression bench plan (fixed for reproducibility).
BASE_SEED = 37

#: Sample budgets of the convergence study, as multiples of the basis size.
BUDGET_MULTIPLIERS = (1.5, 2.0, 4.0, 8.0)

#: Chaos order of every case (the paper's standard setting).
ORDER = 2


def budget_sweep(nodes: int) -> list:
    """Coefficient/mean/std error vs sample budget, against ``opera``."""
    transient = bench_transient()
    session = Analysis.from_spec(nodes, seed=grid_seed_for(nodes, BASE_SEED))
    session.with_transient(transient)
    reference = session.run("opera", order=ORDER)
    ref_coefficients = reference.raw.coefficients
    coeff_scale = float(np.linalg.norm(ref_coefficients))
    mean_scale = float(np.max(np.abs(reference.mean())))
    std_scale = max(float(np.max(reference.std())), 1e-300)
    basis_size = reference.raw.basis.size

    rows = []
    for multiplier in BUDGET_MULTIPLIERS:
        samples = int(np.ceil(multiplier * basis_size))
        regression = session.run(
            "pce-regression", order=ORDER, samples=samples, seed=BASE_SEED
        )
        montecarlo = session.run("montecarlo", samples=samples, seed=BASE_SEED)
        rows.append(
            {
                "nodes": int(session.num_nodes),
                "order": ORDER,
                "basis_size": int(basis_size),
                "samples": samples,
                "oversampling": float(samples / basis_size),
                "coefficient_relative_error": float(
                    np.linalg.norm(regression.raw.coefficients - ref_coefficients)
                    / max(coeff_scale, 1e-300)
                ),
                "mean_relative_error": float(
                    np.max(np.abs(regression.mean() - reference.mean())) / mean_scale
                ),
                "std_relative_error": float(
                    np.max(np.abs(regression.std() - reference.std())) / std_scale
                ),
                "mc_mean_relative_error": float(
                    np.max(np.abs(montecarlo.mean() - reference.mean())) / mean_scale
                ),
                "mc_std_relative_error": float(
                    np.max(np.abs(montecarlo.std() - reference.std())) / std_scale
                ),
                "regression_wall_s": float(regression.wall_time),
                "montecarlo_wall_s": float(montecarlo.wall_time),
            }
        )
    return rows


def paired_plan(node_counts) -> SweepPlan:
    """One pce-regression and one montecarlo case per grid, equal budgets."""
    samples = bench_mc_samples()
    cases = []
    for nodes in node_counts:
        grid_seed = grid_seed_for(nodes, BASE_SEED)
        for engine in ("montecarlo", "pce-regression"):
            case = SweepCase(
                engine=engine,
                nodes=int(nodes),
                grid_seed=grid_seed,
                order=ORDER if engine == "pce-regression" else None,
                samples=samples,
                workers=bench_workers(),
                chunk_size=8,
            )
            cases.append(case.with_derived_seed(BASE_SEED))
    return SweepPlan(cases=tuple(cases), transient=bench_transient(), base_seed=BASE_SEED)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_regression.json",
        help="where to write the BenchRecord JSON (default: %(default)s)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="gate against this baseline artifact (exit 1 on regression)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=300.0,
        metavar="PCT",
        help="allowed wall-time growth vs the baseline, percent (default %(default)s)",
    )
    args = parser.parse_args(argv)

    smallest = min(bench_node_counts())
    print(f"sample-budget convergence on ~{smallest} nodes, order {ORDER}")
    rows = budget_sweep(smallest)
    for row in rows:
        print(
            f"  s={row['samples']:4d} ({row['oversampling']:.1f}x)  "
            f"coeff {row['coefficient_relative_error']:.2e}  "
            f"mean {row['mean_relative_error']:.2e}  "
            f"std {row['std_relative_error']:.2e}  |  "
            f"MC mean {row['mc_mean_relative_error']:.2e}  "
            f"std {row['mc_std_relative_error']:.2e}"
        )

    plan = paired_plan(bench_node_counts())
    outcome = SweepRunner(workers=bench_workers()).run(plan, store=bench_store("pce-regression"))
    record = record_from_outcome(
        outcome,
        config={"suite": "pce-regression", "budget_sweep": rows},
    )

    print(f"engine sweep: {len(outcome)} case(s), wall {outcome.wall_time:.2f}s")
    for result in outcome:
        print(f"  {result.name:48s} {result.wall_time:8.3f}s")

    path = record.write(args.output)
    print(f"wrote {path}")

    if args.baseline is not None:
        report = compare_records(
            BenchRecord.load(args.baseline),
            record,
            max_regression_percent=args.max_regression,
            min_seconds=0.5,
        )
        print()
        print(report.format())
        if not report.ok:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
