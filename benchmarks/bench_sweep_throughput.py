"""Batched vs unbatched sweep throughput: the cross-scenario scheduler bench.

Runs one corner sweep -- the three RHS-only corners x (``opera``,
``decoupled``, ``deterministic``) -- on the largest bench grid twice, through
the plain per-case runner and through the topology-batched scheduler
(``SweepRunner(batch=True)``), and records cases/second for both.  The
batched pass shares everything the topology determines: one symbolic
analysis, one numeric LU, one stacked multi-RHS march covering every
distinct stackable scenario and one deduplicated march for the
corner-independent deterministic cases.  Every batched case's statistics
are asserted **bit-identical** to its unbatched twin before the artifact is
written -- the speedup is real only if the numbers are the same bytes.

Each mode is measured twice, from the same cold start:

* **cold** -- one pass with every cache empty.  Both modes pay the identical
  grid generation + stamping + excitation evaluation bill here, which is
  work the scheduler cannot deduplicate (it is shared state, built once),
  so the cold ratio mostly measures the grid generator.
* **steady** (the headline) -- best-of-``--repeats`` with sessions retained
  (``retain_sessions=True``), i.e. the regime the batched scheduler exists
  for: repeated scenario sweeps over a fixed grid, as in resumable
  campaigns.  Marches, RHS tables and statistics are recomputed every pass;
  only the grid resources (netlist, stamped matrices, factorisations) stay
  warm -- equally for both modes.

A final, untimed batched pass runs with telemetry to capture the scheduler
counters (``symbolic_reuse``/``numeric_refactor``/``batched_cases``), and a
pooled unbatched pass (two workers) captures ``shm_bytes`` from the
shared-memory result transfer.

The artifact lands at the repo root as ``BENCH_sweep_throughput.json``.
Scale comes from the shared ``OPERA_BENCH_*`` environment variables::

    OPERA_BENCH_NODE_COUNTS=600,1200,2500 PYTHONPATH=src \
    python benchmarks/bench_sweep_throughput.py --output BENCH_sweep_throughput.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.sim.linear import (
    clear_pattern_cache,
    factorization_counters,
    reset_factorization_counters,
)
from repro.sweep import SweepPlan, SweepRunner
from repro.sweep.record import _environment
from repro.sweep.runner import _WORKER_SESSIONS

from _bench_config import bench_node_counts, bench_transient

#: Schema identifier of this artifact.
SCHEMA = "repro.sweep/bench-throughput/v1"

#: Base seed of the throughput plan (fixed for reproducibility).
BASE_SEED = 47

#: The swept scenarios: three RHS-only corners so the stacked decoupled
#: march applies, plus the corner-independent nominal engine.
CORNERS = ("rhs-only", "rhs-wide", "rhs-tight")
ENGINES = ("opera", "decoupled", "deterministic")


def build_plan(nodes: int) -> SweepPlan:
    return SweepPlan.grid(
        (nodes,),
        engines=ENGINES,
        orders=(2,),
        corners=CORNERS,
        transient=bench_transient(),
        base_seed=BASE_SEED,
    )


def _cold_caches() -> None:
    """Drop every cross-run cache so each timed pass starts cold."""
    _WORKER_SESSIONS.clear()
    clear_pattern_cache()
    reset_factorization_counters()


def run_mode(plan: SweepPlan, batch: bool, repeats: int):
    """Cold wall time plus best-of-``repeats`` steady-state wall time.

    One cold pass (all caches empty) is timed first; the grid resources it
    built then stay warm (``retain_sessions=True``) for the steady-state
    repeats, which re-execute every march and every statistic each pass.
    """
    _cold_caches()
    runner = SweepRunner(workers=1, keep_statistics=True, batch=batch, retain_sessions=True)
    started = time.perf_counter()
    outcome = runner.run(plan)
    cold = time.perf_counter() - started
    best = None
    for _ in range(repeats):
        started = time.perf_counter()
        candidate = runner.run(plan)
        wall = time.perf_counter() - started
        if best is None or wall < best:
            best = wall
            outcome = candidate
    counters = factorization_counters()
    _WORKER_SESSIONS.clear()
    return outcome, cold, best, counters


def assert_bit_identical(unbatched, batched) -> int:
    """Every batched case must match its unbatched twin byte for byte."""
    compared = 0
    for base, cand in zip(unbatched, batched):
        assert base.name == cand.name, (base.name, cand.name)
        assert base.times.tobytes() == cand.times.tobytes(), base.name
        assert base.mean.tobytes() == cand.mean.tobytes(), base.name
        assert base.std.tobytes() == cand.std.tobytes(), base.name
        assert base.worst_drop == cand.worst_drop, base.name
        assert base.max_std == cand.max_std, base.name
        compared += 1
    return compared


def telemetry_counters(plan: SweepPlan, *, batch: bool, workers: int) -> dict:
    """Merged telemetry counters of one untimed profiled pass."""
    _cold_caches()
    runner = SweepRunner(
        workers=workers, keep_statistics=True, batch=batch, telemetry=True
    )
    outcome = runner.run(plan)
    merged = outcome.telemetry_summary()
    return dict((merged or {}).get("counters", {}))


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_sweep_throughput.json",
        help="where to write the artifact (default: %(default)s)",
    )
    parser.add_argument(
        "--nodes",
        type=int,
        default=None,
        help="grid size (default: the largest OPERA_BENCH_NODE_COUNTS entry)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timed repetitions per mode; best wall time wins (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    nodes = args.nodes if args.nodes is not None else max(bench_node_counts())
    plan = build_plan(nodes)
    print(f"sweep-throughput bench: {len(plan.cases)} case(s) on ~{nodes} nodes")

    # Warm-up on a small grid pays one-time numpy/scipy setup outside the
    # timed passes (the timed caches are still cleared per pass).
    warmup = build_plan(min(120, nodes))
    SweepRunner(workers=1, keep_statistics=True).run(warmup)

    out_u, cold_u, wall_u, factor_u = run_mode(plan, batch=False, repeats=args.repeats)
    out_b, cold_b, wall_b, factor_b = run_mode(plan, batch=True, repeats=args.repeats)

    compared = assert_bit_identical(out_u, out_b)
    print(f"bit-identity: {compared}/{len(plan.cases)} case(s) byte-equal")

    cases = len(plan.cases)
    cps_u, cps_b = cases / wall_u, cases / wall_b
    speedup = cps_b / cps_u
    print(
        f"unbatched: cold {cold_u:.3f}s, steady {wall_u * 1e3:.1f}ms"
        f"  ({cps_u:.2f} cases/s)  {factor_u}"
    )
    print(
        f"batched:   cold {cold_b:.3f}s, steady {wall_b * 1e3:.1f}ms"
        f"  ({cps_b:.2f} cases/s)  {factor_b}"
    )
    print(f"speedup:   {speedup:.2f}x cases/second steady, {cold_u / cold_b:.2f}x cold")

    counters = telemetry_counters(plan, batch=True, workers=1)
    pooled_counters = telemetry_counters(plan, batch=False, workers=2)
    print(f"batched counters: {counters}")
    print(f"pooled counters (workers=2): {pooled_counters}")

    payload = {
        "schema": SCHEMA,
        "created_unix": time.time(),
        "nodes": nodes,
        "num_cases": len(plan.cases),
        "engines": list(ENGINES),
        "corners": list(CORNERS),
        "repeats": args.repeats,
        "transient": {
            "t_stop": plan.transient.t_stop,
            "dt": plan.transient.dt,
            "steps": plan.transient.num_steps,
        },
        "unbatched": {
            "cold_wall_s": cold_u,
            "wall_s": wall_u,
            "cases_per_second": cps_u,
            "factorization": factor_u,
        },
        "batched": {
            "cold_wall_s": cold_b,
            "wall_s": wall_b,
            "cases_per_second": cps_b,
            "factorization": factor_b,
        },
        "speedup_cases_per_second": speedup,
        "speedup_cold": cold_u / cold_b,
        "bit_identical": True,
        "telemetry": {
            "batched_counters": counters,
            "pooled_counters": pooled_counters,
            "pooled_workers": 2,
        },
        "environment": _environment(),
    }
    args.output.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
