"""Table 1 reproduction: OPERA vs Monte Carlo over several grid sizes.

For every benchmark grid this harness drives the :class:`repro.api.Analysis`
facade:

* times the OPERA order-2 stochastic transient (the ``benchmark`` fixture
  measures exactly the paper's "CPU time OPERA" column),
* runs the Monte Carlo reference once and records its wall time ("CPU time
  Monte"),
* computes the average/maximum percentage errors of mu and sigma and the
  average +/-3-sigma spread as a percentage of the nominal drop,
* appends the row to ``benchmarks/results/table1.txt`` next to the paper's
  original Table 1 for shape comparison.

A *fresh* session is used per grid so the timed OPERA run pays for its own
basis construction, Galerkin assembly and factorisation, as the paper's
CPU-time column does.

Scale is controlled by the environment variables documented in
``benchmarks/conftest.py``; absolute times differ from the 2005 testbed, but
the shape (mu errors << sigma errors, spreads around +/-30-45 %, OPERA much
faster than Monte Carlo) is what the reproduction checks.
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    PAPER_TABLE1,
    Table1Row,
    compare_to_monte_carlo,
    format_table1,
    three_sigma_spread_percent,
)
from repro.api import Analysis

from _bench_config import (
    bench_mc_samples,
    bench_node_counts,
    bench_transient,
    write_result,
)


@pytest.mark.parametrize("target_nodes", bench_node_counts())
def test_table1_row(benchmark, grid_cache, table1_rows, results_dir, target_nodes):
    """One row of Table 1: accuracy and speed-up for a single grid."""
    _, netlist, stamped, system = grid_cache.get(target_nodes)
    transient = bench_transient()
    session = (
        Analysis.from_netlist(netlist, stamped=stamped)
        .with_system(system)
        .with_transient(transient)
    )

    opera_view = benchmark.pedantic(
        session.run, kwargs=dict(engine="opera", order=2), rounds=1, iterations=1
    )

    mc_view = session.run(
        "montecarlo",
        samples=bench_mc_samples(),
        seed=7,
        antithetic=True,
    )

    metrics = compare_to_monte_carlo(opera_view.raw, mc_view.raw)
    nominal = session.nominal_transient()
    spread = three_sigma_spread_percent(opera_view.raw, nominal)

    row = Table1Row.from_metrics(
        name=f"synthetic-{stamped.num_nodes}",
        num_nodes=stamped.num_nodes,
        metrics=metrics,
        three_sigma_spread=spread,
        monte_carlo_seconds=mc_view.wall_time or 0.0,
        opera_seconds=opera_view.wall_time or 0.0,
    )
    table1_rows[stamped.num_nodes] = row

    # Shape assertions mirroring the paper's findings.
    assert metrics.average_mean_error_percent < 1.0
    assert metrics.average_sigma_error_percent < 25.0
    assert 20.0 < spread < 60.0
    assert row.speedup > 3.0

    rows = [table1_rows[key] for key in sorted(table1_rows)]
    text = "\n\n".join(
        [
            format_table1(
                rows,
                title=(
                    "Table 1 (reproduced on synthetic grids; "
                    f"MC samples = {bench_mc_samples()}, "
                    f"steps = {transient.num_steps}, order-2 expansion)"
                ),
            ),
            format_table1(PAPER_TABLE1, title="Table 1 (paper, for shape comparison)"),
        ]
    )
    write_result(results_dir, "table1.txt", text + "\n")
