"""Table 1 reproduction: OPERA vs Monte Carlo over several grid sizes.

This harness drives the :mod:`repro.sweep` subsystem: one
:class:`~repro.sweep.SweepPlan` covers every benchmark grid with an OPERA
order-2 case and a Monte Carlo case, executed by a
:class:`~repro.sweep.SweepRunner` (``OPERA_BENCH_WORKERS`` controls the
process-pool width; the statistics are identical for any worker count).
From the sweep results each test then

* computes the average/maximum percentage errors of mu and sigma and the
  average +/-3-sigma spread as a percentage of the nominal drop,
* appends the row to ``benchmarks/results/table1.txt`` next to the paper's
  original Table 1 for shape comparison,

and the module fixture writes the sweep's :class:`~repro.sweep.BenchRecord`
artifact (wall times, worst drops, OPERA-vs-MC speedups) to
``benchmarks/results/table1_sweep.json``.

Scale is controlled by the environment variables documented in
``benchmarks/_bench_config.py``; absolute times differ from the 2005
testbed, but the shape (mu errors << sigma errors, spreads around
+/-30-45 %, OPERA much faster than Monte Carlo) is what the reproduction
checks.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.analysis import (
    PAPER_TABLE1,
    Table1Row,
    compare_to_monte_carlo,
    format_table1,
    three_sigma_spread_percent,
)
from repro.api import Analysis
from repro.sweep import SweepCase, SweepPlan, SweepRunner, record_from_outcome
from repro.sweep.plan import corner_spec, grid_seed_for

from _bench_config import (
    bench_mc_samples,
    bench_node_counts,
    bench_store,
    bench_transient,
    bench_workers,
    write_result,
)

#: Base seed of the Table-1 sweep plan (fixed for reproducible rows).
BASE_SEED = 7


def _matrix_free_case(nodes: int) -> SweepCase:
    """An opera case on the lazy Kronecker-sum operators (``mean-block-cg``)."""
    return SweepCase(
        engine="opera",
        nodes=int(nodes),
        grid_seed=grid_seed_for(nodes, BASE_SEED),
        order=2,
        solver="mean-block-cg",
    ).with_derived_seed(BASE_SEED)


@pytest.fixture(scope="module")
def table1_sweep(results_dir):
    """One sweep over all benchmark grids: OPERA order-2 (explicit direct and
    matrix-free ``mean-block-cg``) + Monte Carlo."""
    plan = SweepPlan.grid(
        bench_node_counts(),
        engines=("opera", "montecarlo"),
        orders=(2,),
        samples=bench_mc_samples(),
        mc_workers=bench_workers(),
        transient=bench_transient(),
        base_seed=BASE_SEED,
    )
    plan = dataclasses.replace(
        plan, cases=plan.cases + tuple(_matrix_free_case(nodes) for nodes in bench_node_counts())
    )
    runner = SweepRunner(workers=bench_workers(), keep_statistics=True)
    # With OPERA_BENCH_STORE set, Table-1 rows are resumable: re-runs (or
    # runs killed half-way) reuse the persisted cases instead of re-solving.
    outcome = runner.run(plan, store=bench_store("table1"))
    record = record_from_outcome(outcome, config={"suite": "table1"})
    record.write(results_dir / "table1_sweep.json")
    return outcome


@pytest.mark.parametrize("target_nodes", bench_node_counts())
def test_matrix_free_solver_matches_direct(table1_sweep, target_nodes):
    """The ``mean-block-cg`` case reproduces the explicit-direct statistics.

    This pins the ROADMAP follow-up of wiring the matrix-free solver into
    the paper benches: the tight CG tolerance keeps the Table-1 rows
    solver-independent.
    """
    direct = table1_sweep.case(engine="opera", nodes=target_nodes, solver=None)
    fast = table1_sweep.case(engine="opera", nodes=target_nodes, solver="mean-block-cg")
    np.testing.assert_allclose(fast.mean, direct.mean, rtol=0.0, atol=1e-9)
    np.testing.assert_allclose(fast.std, direct.std, rtol=0.0, atol=1e-9)


def _nominal_transient(outcome, nodes: int):
    """The nominal (no-variation) transient of the sweep's grid for ``nodes``."""
    case = next(
        case for case in outcome.plan.cases if case.engine == "opera" and case.nodes == nodes
    )
    session = Analysis.from_spec(
        case.nodes,
        seed=case.grid_seed,
        variation=corner_spec(case.corner),
        transient=outcome.plan.transient,
    )
    return session.nominal_transient()


@pytest.mark.parametrize("target_nodes", bench_node_counts())
def test_table1_row(table1_sweep, table1_rows, results_dir, target_nodes):
    """One row of Table 1: accuracy and speed-up for a single grid."""
    opera = table1_sweep.case(engine="opera", nodes=target_nodes, solver=None)
    mc = table1_sweep.case(engine="montecarlo", nodes=target_nodes)

    metrics = compare_to_monte_carlo(opera, mc)
    nominal = _nominal_transient(table1_sweep, target_nodes)
    spread = three_sigma_spread_percent(opera, nominal)

    row = Table1Row.from_metrics(
        name=f"synthetic-{opera.num_nodes}",
        num_nodes=opera.num_nodes,
        metrics=metrics,
        three_sigma_spread=spread,
        monte_carlo_seconds=mc.wall_time,
        opera_seconds=opera.wall_time,
    )
    table1_rows[opera.num_nodes] = row

    # Shape assertions mirroring the paper's findings.
    assert metrics.average_mean_error_percent < 1.0
    assert metrics.average_sigma_error_percent < 25.0
    assert 20.0 < spread < 60.0
    assert row.speedup > 3.0

    transient = table1_sweep.plan.transient
    rows = [table1_rows[key] for key in sorted(table1_rows)]
    text = "\n\n".join(
        [
            format_table1(
                rows,
                title=(
                    "Table 1 (reproduced on synthetic grids; "
                    f"MC samples = {bench_mc_samples()}, "
                    f"steps = {transient.num_steps}, order-2 expansion, "
                    f"sweep workers = {bench_workers()})"
                ),
            ),
            format_table1(PAPER_TABLE1, title="Table 1 (paper, for shape comparison)"),
        ]
    )
    write_result(results_dir, "table1.txt", text + "\n")
