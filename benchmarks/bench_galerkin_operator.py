"""Explicit-kron vs matrix-free Galerkin: the linalg-subsystem benchmark.

Three comparisons, scaled by the shared ``OPERA_BENCH_*`` environment
variables (see ``_bench_config.py``):

1. **Assemble**: explicit CSR assembly of ``G~``/``C~`` (one COO
   concatenation) vs lazy :class:`~repro.linalg.KronSumOperator`
   construction, at growing chaos order on the largest grid.
2. **Apply**: one application of the stepping matrix ``G~ + C~/h`` --
   explicit CSR matvec vs matrix-free operator matvec.
3. **Solve**: the coupled stochastic transient, explicit assembly + direct
   LU vs lazy assembly + ``mean-block-cg`` (one ``n x n`` mean-block LU
   preconditioning all ``P`` chaos blocks), with the wall-time speedup and
   the mean/std agreement of the two paths recorded per grid and order.

The engine comparison doubles as a solver-ablation sweep
(``opera-nN-oK-paper`` vs ``opera-nN-oK-mean-block-cg-paper`` cases), so
matrix-free wall times are tracked in the same
:class:`~repro.sweep.BenchRecord` schema as every other perf artifact.  The
record lands at the repo root as ``BENCH_galerkin.json`` (the perf
trajectory of this optimisation), with the raw assemble/apply timings and
the accuracy contract in its ``config`` block.

Run a larger study with::

    OPERA_BENCH_NODE_COUNTS=2500,10000 PYTHONPATH=src \
    python benchmarks/bench_galerkin_operator.py --output BENCH_galerkin.json
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from repro.api import Analysis
from repro.chaos.galerkin import assemble_augmented_matrix, assemble_augmented_operator
from repro.opera.engine import _matrix_coefficients, build_basis
from repro.sweep import (
    BenchRecord,
    SweepCase,
    SweepPlan,
    SweepRunner,
    compare_records,
    record_from_outcome,
)
from repro.sweep.plan import grid_seed_for

from _bench_config import bench_node_counts, bench_store, bench_transient, bench_workers

#: Base seed of the operator bench plan (fixed for reproducibility).
BASE_SEED = 31

#: Chaos orders of the raw operator comparison.
ORDERS = (2, 3)

#: Repetitions of the apply-timing loop.
APPLY_REPEATS = 5


def time_raw_operator(nodes: int, order: int) -> dict:
    """Assemble + apply wall times, explicit CSR vs lazy operator."""
    session = Analysis.from_spec(nodes, seed=grid_seed_for(nodes, BASE_SEED))
    system = session.system
    basis = build_basis(system, order)
    g_coefficients = _matrix_coefficients(basis, system.g_nominal, system.g_sensitivities)
    c_coefficients = _matrix_coefficients(basis, system.c_nominal, system.c_sensitivities)
    h = bench_transient().dt

    started = time.perf_counter()
    explicit_g = assemble_augmented_matrix(basis, g_coefficients)
    explicit_c = assemble_augmented_matrix(basis, c_coefficients)
    explicit_step = explicit_g + explicit_c / h
    explicit_assemble_s = time.perf_counter() - started

    started = time.perf_counter()
    lazy_g = assemble_augmented_operator(basis, g_coefficients)
    lazy_c = assemble_augmented_operator(basis, c_coefficients)
    lazy_step = lazy_g + lazy_c * (1.0 / h)
    lazy_assemble_s = time.perf_counter() - started

    x = np.linspace(0.0, 1.0, explicit_step.shape[0])
    out = np.empty(explicit_step.shape[0])
    started = time.perf_counter()
    for _ in range(APPLY_REPEATS):
        explicit_step @ x
    explicit_apply_s = (time.perf_counter() - started) / APPLY_REPEATS
    started = time.perf_counter()
    for _ in range(APPLY_REPEATS):
        lazy_step.matvec(x, out=out)
    lazy_apply_s = (time.perf_counter() - started) / APPLY_REPEATS
    apply_error = float(
        np.max(np.abs(lazy_step.matvec(x) - explicit_step @ x))
        / max(np.max(np.abs(explicit_step @ x)), 1e-300)
    )

    return {
        "nodes": int(system.num_nodes),
        "order": int(order),
        "basis_size": int(basis.size),
        "augmented_dim": int(explicit_step.shape[0]),
        "explicit_nnz": int(explicit_step.nnz),
        "explicit_assemble_s": float(explicit_assemble_s),
        "lazy_assemble_s": float(lazy_assemble_s),
        "explicit_apply_s": float(explicit_apply_s),
        "lazy_apply_s": float(lazy_apply_s),
        "apply_relative_error": apply_error,
    }


def time_transient_paths(nodes: int, order: int) -> dict:
    """Coupled transient: explicit+direct vs matrix-free mean-block-cg."""
    transient = bench_transient()
    session = Analysis.from_spec(nodes, seed=grid_seed_for(nodes, BASE_SEED))
    session.with_transient(transient)

    direct = session.run("opera", order=order, store_coefficients=False)
    session.clear_caches()  # fresh factorisations: time full cost per path
    matrix_free = session.run(
        "opera", order=order, solver="mean-block-cg", store_coefficients=False
    )

    mean_scale = float(np.max(np.abs(direct.mean())))
    std_scale = float(np.max(np.abs(direct.std())))
    mean_error = float(np.max(np.abs(matrix_free.mean() - direct.mean())) / mean_scale)
    std_error = float(np.max(np.abs(matrix_free.std() - direct.std())) / max(std_scale, 1e-300))
    return {
        "nodes": int(session.num_nodes),
        "order": int(order),
        "explicit_direct_s": float(direct.wall_time),
        "matrix_free_s": float(matrix_free.wall_time),
        "speedup": (
            float(direct.wall_time / matrix_free.wall_time)
            if matrix_free.wall_time > 0
            else None
        ),
        "mean_relative_error": mean_error,
        "std_relative_error": std_error,
        "solver_stats": matrix_free.solver_stats,
    }


def solver_ablation_plan(node_counts, order: int) -> SweepPlan:
    """Paired opera cases per grid: engine-default direct vs mean-block-cg."""
    cases = []
    for nodes in node_counts:
        grid_seed = grid_seed_for(nodes, BASE_SEED)
        for solver in (None, "mean-block-cg"):
            case = SweepCase(
                engine="opera",
                nodes=int(nodes),
                grid_seed=grid_seed,
                order=order,
                solver=solver,
            )
            cases.append(case.with_derived_seed(BASE_SEED))
    return SweepPlan(cases=tuple(cases), transient=bench_transient(), base_seed=BASE_SEED)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_galerkin.json",
        help="where to write the BenchRecord JSON (default: %(default)s)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="gate against this baseline artifact (exit 1 on regression)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=300.0,
        metavar="PCT",
        help="allowed wall-time growth vs the baseline, percent (default %(default)s)",
    )
    parser.add_argument(
        "--order",
        type=int,
        default=2,
        help="chaos order of the engine-level sweep cases (default %(default)s)",
    )
    args = parser.parse_args(argv)

    largest = max(bench_node_counts())
    raw_operator = []
    raw_transient = []
    for order in ORDERS:
        print(f"raw operator comparison on ~{largest} nodes, order {order}")
        raw = time_raw_operator(largest, order)
        raw_operator.append(raw)
        print(
            f"  assemble explicit {raw['explicit_assemble_s']:8.3f}s   "
            f"lazy {raw['lazy_assemble_s']:8.3f}s"
        )
        print(
            f"  apply    explicit {raw['explicit_apply_s']:8.5f}s   "
            f"lazy {raw['lazy_apply_s']:8.5f}s   "
            f"(rel err {raw['apply_relative_error']:.2e})"
        )
        timing = time_transient_paths(largest, order)
        raw_transient.append(timing)
        print(
            f"  transient direct {timing['explicit_direct_s']:8.3f}s   "
            f"mean-block-cg {timing['matrix_free_s']:8.3f}s   "
            f"speedup {timing['speedup']:.2f}x   "
            f"mean err {timing['mean_relative_error']:.2e}   "
            f"std err {timing['std_relative_error']:.2e}"
        )

    plan = solver_ablation_plan(bench_node_counts(), args.order)
    outcome = SweepRunner(workers=bench_workers()).run(plan, store=bench_store("galerkin-operator"))
    record = record_from_outcome(
        outcome,
        config={
            "suite": "galerkin-operator",
            "raw_operator": raw_operator,
            "raw_transient": raw_transient,
        },
    )

    print(f"engine sweep: {len(outcome)} case(s), wall {outcome.wall_time:.2f}s")
    for result in outcome:
        print(f"  {result.name:48s} {result.wall_time:8.3f}s")

    path = record.write(args.output)
    print(f"wrote {path}")

    if args.baseline is not None:
        report = compare_records(
            BenchRecord.load(args.baseline),
            record,
            max_regression_percent=args.max_regression,
            min_seconds=0.5,
        )
        print()
        print(report.format())
        if not report.ok:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
