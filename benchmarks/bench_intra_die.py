"""Extension bench: intra-die (spatially correlated) variation.

Not part of the paper's evaluation (which is inter-die only), but the natural
next experiment its framework enables: how does the drop variability change
as the variation decorrelates across the die, and what does the multi-germ
expansion cost?  The bench also validates the spatial OPERA run against a
Monte Carlo sweep at one correlation length.
"""

from __future__ import annotations

import pytest

from repro.analysis import compare_to_monte_carlo
from repro.montecarlo import MonteCarloConfig, run_monte_carlo_transient
from repro.opera import OperaConfig, run_opera_transient
from repro.variation import RegionPartition, SpatialVariationSpec, build_spatial_stochastic_system

from _bench_config import bench_mc_samples, bench_node_counts, bench_transient, write_result

CORRELATION_LENGTHS = (1.0e9, 150.0, 10.0)


@pytest.fixture(scope="module")
def spatial_grid(grid_cache):
    target = sorted(bench_node_counts())[0]
    spec, netlist, stamped, _ = grid_cache.get(target)
    partition = RegionPartition(nx=spec.nx, ny=spec.ny, region_rows=3, region_cols=3)
    return spec, netlist, stamped, partition


@pytest.fixture(scope="module")
def sweep_rows():
    return {}


@pytest.mark.parametrize("correlation_length", CORRELATION_LENGTHS)
def test_correlation_length_sweep(
    benchmark, spatial_grid, sweep_rows, results_dir, correlation_length
):
    _, netlist, stamped, partition = spatial_grid
    system = build_spatial_stochastic_system(
        netlist,
        partition,
        SpatialVariationSpec(correlation_length=correlation_length, energy_fraction=0.98),
        stamped=stamped,
    )
    config = OperaConfig(transient=bench_transient(), order=2)
    result = benchmark.pedantic(run_opera_transient, args=(system, config), rounds=1, iterations=1)
    worst = result.worst_node()
    step = result.peak_time_index(worst)
    sweep_rows[correlation_length] = (
        system.num_variables,
        result.basis.size,
        float(result.std_drop[step, worst]),
        result.wall_time,
    )

    lines = [
        "Extension: intra-die spatial variation, correlation-length sweep",
        "corr_length_um  germs  basis_terms  worst_node_sigma_mV  wall_time_s",
    ]
    for length in sorted(sweep_rows, reverse=True):
        germs, terms, sigma, wall = sweep_rows[length]
        label = "inf" if length >= 1e8 else f"{length:g}"
        lines.append(f"{label:>14}  {germs:5d}  {terms:11d}  {1e3 * sigma:19.3f}  {wall:11.3f}")
    write_result(results_dir, "intra_die_sweep.txt", "\n".join(lines) + "\n")

    # Local variation must not produce more variability than fully correlated.
    if len(sweep_rows) == len(CORRELATION_LENGTHS):
        sigmas = [sweep_rows[length][2] for length in sorted(sweep_rows, reverse=True)]
        assert sigmas[-1] <= sigmas[0] * 1.05


def test_spatial_accuracy_vs_monte_carlo(benchmark, spatial_grid, results_dir):
    _, netlist, stamped, partition = spatial_grid
    system = build_spatial_stochastic_system(
        netlist,
        partition,
        SpatialVariationSpec(correlation_length=150.0, max_components=3),
        stamped=stamped,
    )
    transient = bench_transient()
    opera_result = benchmark.pedantic(
        run_opera_transient,
        args=(system, OperaConfig(transient=transient, order=2)),
        rounds=1,
        iterations=1,
    )
    mc_result = run_monte_carlo_transient(
        system,
        MonteCarloConfig(
            transient=transient, num_samples=bench_mc_samples(), seed=53, antithetic=True
        ),
    )
    metrics = compare_to_monte_carlo(opera_result, mc_result)
    assert metrics.average_mean_error_percent < 1.0

    text = (
        "Extension: intra-die spatial variation vs Monte Carlo\n"
        f"germs: {system.num_variables}, basis terms: {opera_result.basis.size}\n"
        f"{metrics}\n"
        f"OPERA wall time (s): {opera_result.wall_time:.3f}\n"
        f"MC wall time (s)   : {mc_result.wall_time:.3f}\n"
    )
    write_result(results_dir, "intra_die_accuracy.txt", text)
