"""Shared fixtures for the benchmark / reproduction harness.

See ``_bench_config`` for the environment variables that control the scale
of the benchmark grids and the Monte Carlo sample count.  Artifacts (the
reproduced Table 1 and the Figure 1/2 series) are written to
``benchmarks/results/``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Tuple

import pytest

from repro.api import Analysis
from repro.grid import generate_power_grid, spec_for_node_count, stamp
from repro.variation import VariationSpec, build_stochastic_system

from _bench_config import RESULTS_DIR


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


class GridCache:
    """Builds and caches the benchmark grids and their stochastic systems."""

    def __init__(self):
        self._cache: Dict[int, Tuple] = {}
        self._sessions: Dict[int, Analysis] = {}

    def get(self, target_nodes: int):
        if target_nodes not in self._cache:
            spec = spec_for_node_count(
                target_nodes,
                num_layers=2,
                num_blocks=9,
                pad_spacing=2,
                seed=100 + target_nodes % 97,
            )
            netlist = generate_power_grid(spec)
            stamped = stamp(netlist)
            system = build_stochastic_system(stamped, VariationSpec.paper_defaults())
            self._cache[target_nodes] = (spec, netlist, stamped, system)
        return self._cache[target_nodes]

    def session(self, target_nodes: int) -> Analysis:
        """An :class:`Analysis` session sharing the cached grid objects.

        The session's own caches (bases, factorisations, Galerkin
        assemblies) persist across benches, mirroring how a long-lived
        analysis service would run many workloads on one grid.
        """
        if target_nodes not in self._sessions:
            _, netlist, stamped, system = self.get(target_nodes)
            self._sessions[target_nodes] = Analysis.from_netlist(
                netlist, stamped=stamped
            ).with_system(system)
        return self._sessions[target_nodes]


@pytest.fixture(scope="session")
def grid_cache() -> GridCache:
    return GridCache()


@pytest.fixture(scope="session")
def table1_rows() -> dict:
    """Session-wide accumulator for Table-1 rows (filled by bench_table1)."""
    return {}
